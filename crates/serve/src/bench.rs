//! The multi-client, multi-backend serving loop and its report.
//!
//! Clients are tasks on the `laab-kernels` persistent worker pool
//! ([`parallel_for`]): the request stream is first coalesced by the
//! **admission window** — pending requests with identical
//! `(Signature, BackendId)` (same family, size, and dtype) are grouped
//! into batches of up to `batch_window` — and each client drains whole
//! batches, driving every batch through **each selected backend in
//! turn**: one plan-cache lookup per `(batch, backend)` (compiling on a
//! miss — the cold trace), then the batch's executions against the
//! per-request operand bindings.
//!
//! With batching enabled, every batch of two or more requests runs
//! **both** legs, interleaved at batch granularity:
//!
//! * the **solo** leg executes the plan once per request — what a
//!   non-batching server pays per request (minus its per-request cache
//!   lookup, a deliberate bias *against* batching, so the measured
//!   speedup is conservative); and
//! * the **batched** leg executes the plan once over all the batch's
//!   environments ([`Plan::execute_batched`]) — column-stacked multi-RHS
//!   GEMM where the compile-time analysis proved it legal, the
//!   bitwise-identical per-request fallback otherwise.
//!
//! The batched leg is the *serving* path (its per-request share, plus
//! the amortized lookup, is the reported latency); the solo leg exists
//! so the batched-vs-solo ratio is measured under identical interleaved
//! machine state — the same 1-CPU protocol the backend A/B and the GEMM
//! bench's seed ratio use: transient load hits both legs equally, so the
//! *ratio* stays stable even when absolute latencies jitter.
//!
//! The harness reports per-backend requests/s, p50/p99, batch-lookup hit
//! rates, the batched-vs-solo split (overall, per backend, and per
//! family), the occupancy histogram, and the cache counters (now
//! including eviction-induced recompiles) as a `BENCH_serve.json`
//! document.
//!
//! Like every timing in the suite, numbers are *recorded* unconditionally
//! and *asserted* only under `LAAB_STRICT_TIMING=1`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use laab_backend::{registry, BackendScalar, Dtype, Registration};
use laab_expr::eval::Env;
use laab_framework::Framework;
use laab_kernels::parallel_for;
use laab_stats::Samples;

use crate::admission::AdmissionQueue;
use crate::cache::{Lookup, PlanCache};
use crate::plan::{EgraphReport, Plan};
use crate::proto::FrameError;
use crate::signature::OptLevel;
use crate::workload::{synthetic_mix, Family, Request};

/// Schema tag of the `BENCH_serve.json` report, bumped on breaking
/// changes. `v7`: the `deferred` record — when the lazy tape backend is
/// among `--backends`, the report carries its tape/flush/fusion counters
/// (tape lengths, flush reasons, fused vs. unfused op counts), the
/// modeled dispatch-vs-compute nanosecond split per family, the
/// interleaved fusion-on/fusion-off A/B, and post-drain engine-vs-tape
/// equivalence probes. (`v6` added the optimizer A/B: `opt_levels`,
/// `opt_families`, cross-level probes, and the
/// `saturation_budget_hits` fallback count; `v5` the overload sweep
/// through a bounded backlog; `v4` the live deadline-or-occupancy
/// `admission` record and the window × arrival-rate `sweep` grid.)
pub const SERVE_REPORT_SCHEMA: &str = "laab-serve-bench-v7";

/// Configuration of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Synthetic requests to drain (each is driven through every
    /// selected backend).
    pub requests: usize,
    /// Serving clients (pool tasks); `0` means detected hardware
    /// parallelism (capped at 8 — beyond that the 1-socket kernels are
    /// the bottleneck, not the serving layer).
    pub clients: usize,
    /// Base operand size of the request families.
    pub n: usize,
    /// Seed for the request stream and the operand pools.
    pub seed: u64,
    /// `true` for the CI smoke protocol (recorded in the report).
    pub smoke: bool,
    /// Plan-cache capacity **per lane** (one lane = one backend ×
    /// optimizer level): the shared cache is bounded to `cache_capacity ×
    /// backends × levels`, so total capacity scales with the full A/B
    /// width. The cache itself stays hash-sharded (not partitioned per
    /// lane), so isolation is proportional sizing, not a hard guarantee —
    /// size generously relative to the distinct-signature count when
    /// eviction-free per-backend counters matter.
    pub cache_capacity: usize,
    /// Plan-cache shard count.
    pub shards: usize,
    /// Every `churn_every`-th request changes signature (0 disables);
    /// see [`synthetic_mix`].
    pub churn_every: usize,
    /// Registry names of the backends to drive, first = the ratio
    /// baseline. One entry is a plain serving run; several is an A/B
    /// under identical interleaved traffic.
    pub backends: Vec<String>,
    /// Pin every request to one precision (`None` = mixed f32/f64).
    pub dtype: Option<Dtype>,
    /// Admission-window size: pending same-signature requests coalesce
    /// into batches of up to this many. `0` or `1` disables batching
    /// (every request is its own batch — the pre-v3 serving loop).
    pub batch_window: usize,
    /// Latency budget of a partial batch, microseconds: a live group
    /// flushes when its oldest request has waited this long, even below
    /// the occupancy window (deadline **or** occupancy, whichever
    /// first). `0` disables the timer — meaningful only for the drained
    /// backlog; the builder and the network server reject it when
    /// batching is on.
    pub batch_deadline_us: u64,
    /// Offered load of the live (arrival-paced) measurement phases,
    /// requests per second. Arrivals are open-loop Poisson at this rate;
    /// the sweep also probes a quarter of it.
    pub arrival_rate: f64,
    /// Network server: per-connection in-flight cap. A connection with
    /// this many unanswered requests gets `Busy{retry_after_us}` instead
    /// of queue growth. `0` = unlimited (the pre-v5 behavior).
    pub max_inflight: usize,
    /// Network server: global admission-backlog bound in requests.
    /// Submits past it are shed with a `Busy` response; past *half* of
    /// it, groups flush early (pressure) to favor latency. `0` =
    /// unbounded. The in-process drained-backlog phases ignore this (the
    /// whole stream is pending by construction); the overload sweep and
    /// the network server enforce it.
    pub backlog: usize,
    /// Network server: quarantine a `(signature, backend)` after this
    /// many caught execution panics — further requests for it fail fast
    /// instead of re-poisoning executors. `0` = never quarantine.
    pub quarantine_after: u32,
    /// Network server: reader-side socket read timeout, milliseconds. A
    /// connection silent for this long is reaped (counted, connection
    /// dropped) instead of pinning its reader thread forever. `0` =
    /// wait forever (the pre-v5 behavior).
    pub read_timeout_ms: u64,
    /// Deterministic fault injection for the network server; `None`
    /// injects nothing.
    pub faults: Option<crate::fault::FaultPlan>,
    /// The optimizer level to serve. [`OptLevel::Passes`] (the default)
    /// compiles through the trace-time pass pipeline alone — the pre-v6
    /// behavior, bit for bit. [`OptLevel::Egraph`] **A/Bs both levels
    /// interleaved** (like the backend axis): every batch compiles and
    /// executes once per level, the cache keys entries per level, and
    /// the report adds per-level and per-family comparisons plus
    /// cross-level numeric probes.
    pub opt: OptLevel,
    /// Modeled accelerator dispatch latency of the `deferred` backend,
    /// microseconds **per flush group** (not per op — amortizing this
    /// constant over fused groups is the whole point of the tape).
    /// Ignored unless `deferred` is among the backends.
    pub dispatch_us: u64,
    /// Whether the `deferred` backend's flush pass fuses queued ops
    /// (`false` = one dispatch group per op — the unfused baseline the
    /// report's fusion A/B measures against).
    pub fusion: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            requests: 2048,
            clients: 0,
            n: 192,
            seed: 0x1AAB,
            smoke: false,
            cache_capacity: 64,
            shards: 8,
            churn_every: 16,
            backends: vec!["engine".to_string()],
            dtype: None,
            batch_window: 8,
            batch_deadline_us: 250,
            arrival_rate: 2000.0,
            max_inflight: 256,
            backlog: 2048,
            quarantine_after: 3,
            read_timeout_ms: 30_000,
            faults: None,
            opt: OptLevel::Passes,
            dispatch_us: 5,
            fusion: true,
        }
    }
}

impl ServeConfig {
    /// The CI smoke protocol: tiny operands, a short stream, the same
    /// mixed-signature shape as the full run.
    pub fn smoke() -> Self {
        Self { requests: 320, n: 48, smoke: true, ..Self::default() }
    }

    /// Start a validating [`ServeConfigBuilder`] from the defaults. The
    /// builder is the supported construction path: it rejects unknown
    /// backends, zero shards, an explicit `--clients 0`, and a
    /// coalescing window without a deadline at `build()` time, before
    /// any request is dispatched. Struct-literal construction still
    /// compiles (the fields are public) but skips that validation and is
    /// deprecated for CLI use.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: Self::default(), explicit_zero_clients: false }
    }

    /// A builder seeded from the smoke protocol instead of the defaults.
    pub fn smoke_builder() -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: Self::smoke(), explicit_zero_clients: false }
    }

    /// The resolved client count. An explicit positive `clients` is used
    /// verbatim — never clamped. `0` (auto) detects hardware parallelism
    /// and caps it at 8: beyond that the 1-socket kernels are the
    /// bottleneck, not the serving layer. The cap applies **only** to
    /// auto-detection; pass an explicit count to exceed it on bigger
    /// boxes. The report records both `clients_requested` and
    /// `clients_resolved` so sweeps stay interpretable either way.
    pub fn resolved_clients(&self) -> usize {
        if self.clients > 0 {
            self.clients
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
        }
    }

    /// Whether the admission window actually coalesces (`batch_window ≥ 2`).
    pub fn batching_enabled(&self) -> bool {
        self.batch_window >= 2
    }

    /// The optimizer levels the run drives, in lane order. `--opt
    /// passes` serves one level; `--opt egraph` A/Bs the pass pipeline
    /// against equality saturation under identical interleaved traffic
    /// (the pass pipeline stays in as the baseline leg, exactly like the
    /// first-listed backend anchors the backend ratio).
    pub fn opt_levels(&self) -> Vec<OptLevel> {
        match self.opt {
            OptLevel::Passes => vec![OptLevel::Passes],
            OptLevel::Egraph => vec![OptLevel::Passes, OptLevel::Egraph],
        }
    }

    /// The deferred backend's tape tuning for this run: the configured
    /// dispatch charge and fusion switch over the default tape capacity.
    pub fn deferred_tuning(&self) -> laab_deferred::Tuning {
        laab_deferred::Tuning {
            dispatch_ns: self.dispatch_us.saturating_mul(1_000),
            fuse: self.fusion,
            ..laab_deferred::Tuning::default()
        }
    }

    /// The deadline as a [`Duration`], `None` when disabled or when the
    /// window never holds a partial batch (`batch_window ≤ 1`).
    pub fn deadline(&self) -> Option<Duration> {
        if self.batching_enabled() && self.batch_deadline_us > 0 {
            Some(Duration::from_micros(self.batch_deadline_us))
        } else {
            None
        }
    }
}

/// Validating builder for [`ServeConfig`] — see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
    explicit_zero_clients: bool,
}

impl ServeConfigBuilder {
    /// Synthetic requests to drain (clamped to ≥ 1).
    pub fn requests(mut self, v: usize) -> Self {
        self.cfg.requests = v.max(1);
        self
    }

    /// Explicit serving-client count. `0` is rejected at `build()` — it
    /// is not "all cores"; use [`clients_auto`](Self::clients_auto) (or
    /// omit) for capped auto-detection, or pass the core count you mean.
    pub fn clients(mut self, v: usize) -> Self {
        if v == 0 {
            self.explicit_zero_clients = true;
        } else {
            self.cfg.clients = v;
            self.explicit_zero_clients = false;
        }
        self
    }

    /// Auto-detect the client count (hardware parallelism, capped at 8).
    pub fn clients_auto(mut self) -> Self {
        self.cfg.clients = 0;
        self.explicit_zero_clients = false;
        self
    }

    /// Base operand size of the request families.
    pub fn n(mut self, v: usize) -> Self {
        self.cfg.n = v.max(2);
        self
    }

    /// Seed for the request stream and the operand pools.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// Mark the run as the CI smoke protocol.
    pub fn smoke(mut self, v: bool) -> Self {
        self.cfg.smoke = v;
        self
    }

    /// Plan-cache capacity per backend (clamped to ≥ 1).
    pub fn cache_capacity(mut self, v: usize) -> Self {
        self.cfg.cache_capacity = v.max(1);
        self
    }

    /// Plan-cache shard count (validated > 0 at `build()`).
    pub fn shards(mut self, v: usize) -> Self {
        self.cfg.shards = v;
        self
    }

    /// Signature-churn period (0 disables churn).
    pub fn churn_every(mut self, v: usize) -> Self {
        self.cfg.churn_every = v;
        self
    }

    /// Registry names of the backends to drive (validated at `build()`).
    pub fn backends<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.cfg.backends = names.into_iter().map(Into::into).collect();
        self
    }

    /// Pin the stream to one precision (`None` = mixed).
    pub fn dtype(mut self, v: Option<Dtype>) -> Self {
        self.cfg.dtype = v;
        self
    }

    /// Admission-window occupancy (`0`/`1` disables coalescing).
    pub fn batch_window(mut self, v: usize) -> Self {
        self.cfg.batch_window = v;
        self
    }

    /// Partial-batch latency budget, microseconds. With a coalescing
    /// window (`≥ 2`) this must be ≥ 1 — validated at `build()`.
    pub fn batch_deadline_us(mut self, v: u64) -> Self {
        self.cfg.batch_deadline_us = v;
        self
    }

    /// Offered load of the live phases, requests/s (clamped to ≥ 1).
    pub fn arrival_rate(mut self, v: f64) -> Self {
        self.cfg.arrival_rate = if v.is_finite() { v.max(1.0) } else { 1.0 };
        self
    }

    /// Per-connection in-flight cap (`0` = unlimited).
    pub fn max_inflight(mut self, v: usize) -> Self {
        self.cfg.max_inflight = v;
        self
    }

    /// Global admission-backlog bound in requests (`0` = unbounded).
    pub fn backlog(mut self, v: usize) -> Self {
        self.cfg.backlog = v;
        self
    }

    /// Quarantine a signature after this many caught panics (`0` =
    /// never).
    pub fn quarantine_after(mut self, v: u32) -> Self {
        self.cfg.quarantine_after = v;
        self
    }

    /// Reader-side socket read timeout, milliseconds (`0` = wait
    /// forever).
    pub fn read_timeout_ms(mut self, v: u64) -> Self {
        self.cfg.read_timeout_ms = v;
        self
    }

    /// Deterministic fault-injection plan for the network server.
    pub fn faults(mut self, v: Option<crate::fault::FaultPlan>) -> Self {
        self.cfg.faults = v;
        self
    }

    /// The optimizer level to serve ([`OptLevel::Egraph`] A/Bs both
    /// levels interleaved; see [`ServeConfig::opt`]).
    pub fn opt(mut self, v: OptLevel) -> Self {
        self.cfg.opt = v;
        self
    }

    /// Modeled dispatch latency of the `deferred` backend, µs per flush
    /// group.
    pub fn dispatch_us(mut self, v: u64) -> Self {
        self.cfg.dispatch_us = v;
        self
    }

    /// Enable or disable flush-time fusion on the `deferred` backend.
    pub fn fusion(mut self, v: bool) -> Self {
        self.cfg.fusion = v;
        self
    }

    /// Validate and produce the config.
    ///
    /// # Errors
    /// [`ServeError::NoBackends`] / [`ServeError::UnknownBackend`] /
    /// [`ServeError::DuplicateBackend`] for a bad backend list,
    /// [`ServeError::ZeroShards`] for a shardless cache,
    /// [`ServeError::ZeroClients`] for an explicit `clients(0)`, and
    /// [`ServeError::MissingDeadline`] for a coalescing window with the
    /// deadline timer disabled (a live partial batch could wait forever).
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        let cfg = self.cfg;
        resolve_backends(&cfg.backends)?;
        if cfg.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if self.explicit_zero_clients {
            return Err(ServeError::ZeroClients);
        }
        if cfg.batching_enabled() && cfg.batch_deadline_us == 0 {
            return Err(ServeError::MissingDeadline { window: cfg.batch_window });
        }
        Ok(cfg)
    }
}

/// Why a serving run, a server, or a load generator failed.
///
/// One error surface for the whole stack: configuration rejections
/// (`laab serve` turns them into an `error:` line and a usage exit code
/// instead of letting an invalid combination panic deep inside plan
/// dispatch) **and** the transport failures of the network layers —
/// bind/connect/accept, socket I/O, and frame decoding — as structured
/// variants whose [`source()`](std::error::Error::source) chain
/// preserves the underlying `io::Error`/[`FrameError`]. `laab loadgen`
/// and `laab serve` share this type, so both subcommands print failures
/// through the same display path.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// `--backends` named a backend the registry does not know.
    UnknownBackend {
        /// The name as requested.
        requested: String,
        /// Every name the registry currently resolves.
        available: Vec<String>,
    },
    /// The same backend was listed more than once.
    DuplicateBackend(String),
    /// A selected backend has no entry point for a dtype present in the
    /// request stream.
    UnsupportedDtype {
        /// The offending backend.
        backend: String,
        /// The dtype it cannot execute.
        dtype: Dtype,
    },
    /// The backend list was empty.
    NoBackends,
    /// The plan cache cannot have zero shards.
    ZeroShards,
    /// `--clients 0` was explicit. Zero is not "all cores": auto
    /// detection (the default) caps at 8, and explicit counts are taken
    /// verbatim — so an explicit zero is always a mistake.
    ZeroClients,
    /// A coalescing window (≥ 2) with the deadline timer disabled: a
    /// live partial batch could wait forever.
    MissingDeadline {
        /// The offending window.
        window: usize,
    },
    /// A `--listen`/`--addr` spec that names neither a unix socket path
    /// nor a TCP address.
    BadListen(String),
    /// An `--arrival` spec that names no known arrival process.
    BadArrival(String),
    /// Binding the listener failed.
    Bind {
        /// The address as requested.
        addr: String,
        /// The underlying I/O failure.
        source: Arc<std::io::Error>,
    },
    /// Connecting to the server failed.
    Connect {
        /// The address as requested.
        addr: String,
        /// The underlying I/O failure.
        source: Arc<std::io::Error>,
    },
    /// Accepting a connection failed.
    Accept(Arc<std::io::Error>),
    /// Reading or writing an established socket failed.
    Socket(Arc<std::io::Error>),
    /// A frame could not be encoded or decoded.
    Frame(FrameError),
    /// The server rejected a request (its reason, verbatim).
    Rejected(String),
    /// The peer sent a well-formed frame that makes no sense at this
    /// point of the exchange (e.g. a request on a client connection).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownBackend { requested, available } => {
                write!(f, "unknown backend `{requested}` (available: {})", available.join(", "))
            }
            ServeError::DuplicateBackend(name) => {
                write!(f, "backend `{name}` is listed more than once in --backends")
            }
            ServeError::UnsupportedDtype { backend, dtype } => write!(
                f,
                "backend `{backend}` does not support dtype {dtype} \
                 (restrict the stream with --dtype or drop the backend)"
            ),
            ServeError::NoBackends => write!(f, "--backends must name at least one backend"),
            ServeError::ZeroShards => write!(f, "--shards must be at least 1"),
            ServeError::ZeroClients => write!(
                f,
                "--clients 0 is not \"all cores\": omit the flag (or pass `auto`) for \
                 detected parallelism capped at 8, or pass the explicit count you mean \
                 (explicit counts are never clamped)"
            ),
            ServeError::MissingDeadline { window } => write!(
                f,
                "a coalescing window (--batch-window {window}) needs --batch-deadline-us ≥ 1: \
                 without a latency budget a live partial batch could wait forever"
            ),
            ServeError::BadListen(spec) => write!(
                f,
                "unintelligible listen address `{spec}` \
                 (use unix:<path>, tcp:<host:port>, a socket path, or host:port)"
            ),
            ServeError::BadArrival(spec) => write!(
                f,
                "unintelligible arrival process `{spec}` \
                 (use closed, poisson:<rate>, bursty:<rate>x<burst>, or replay:<file>)"
            ),
            ServeError::Bind { addr, source } => write!(f, "failed to bind {addr}: {source}"),
            ServeError::Connect { addr, source } => {
                write!(f, "failed to connect to {addr}: {source}")
            }
            ServeError::Accept(e) => write!(f, "failed to accept a connection: {e}"),
            ServeError::Socket(e) => write!(f, "socket I/O failed: {e}"),
            ServeError::Frame(e) => write!(f, "protocol error: {e}"),
            ServeError::Rejected(msg) => write!(f, "server rejected the request: {msg}"),
            ServeError::Protocol(what) => write!(f, "unexpected protocol message: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } | ServeError::Connect { source, .. } => {
                Some(source.as_ref())
            }
            ServeError::Accept(e) | ServeError::Socket(e) => Some(e.as_ref()),
            ServeError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

impl PartialEq for ServeError {
    /// Structural equality; wrapped I/O errors compare by
    /// [`std::io::ErrorKind`] (the payload is not comparable).
    fn eq(&self, other: &Self) -> bool {
        use ServeError::*;
        match (self, other) {
            (
                UnknownBackend { requested: a, available: b },
                UnknownBackend { requested: c, available: d },
            ) => (a, b) == (c, d),
            (DuplicateBackend(a), DuplicateBackend(b)) => a == b,
            (
                UnsupportedDtype { backend: a, dtype: b },
                UnsupportedDtype { backend: c, dtype: d },
            ) => (a, b) == (c, d),
            (NoBackends, NoBackends) | (ZeroShards, ZeroShards) | (ZeroClients, ZeroClients) => {
                true
            }
            (MissingDeadline { window: a }, MissingDeadline { window: b }) => a == b,
            (BadListen(a), BadListen(b)) | (BadArrival(a), BadArrival(b)) => a == b,
            (Bind { addr: a, source: s1 }, Bind { addr: b, source: s2 })
            | (Connect { addr: a, source: s1 }, Connect { addr: b, source: s2 }) => {
                a == b && s1.kind() == s2.kind()
            }
            (Accept(a), Accept(b)) | (Socket(a), Socket(b)) => a.kind() == b.kind(),
            (Frame(a), Frame(b)) => a == b,
            (Rejected(a), Rejected(b)) | (Protocol(a), Protocol(b)) => a == b,
            _ => false,
        }
    }
}

/// Resolve the configured backend names against the registry, rejecting
/// unknowns and duplicates with a CLI-grade error.
pub(crate) fn resolve_backends(names: &[String]) -> Result<Vec<&'static Registration>, ServeError> {
    // The deferred backend lives above laab-backend in the crate graph,
    // so the registry only knows it once its crate has been touched;
    // make `--backends deferred` (and the error message's "available"
    // list) work without the caller knowing that.
    laab_deferred::ensure_registered();
    if names.is_empty() {
        return Err(ServeError::NoBackends);
    }
    let mut regs = Vec::with_capacity(names.len());
    let mut seen = HashSet::new();
    for name in names {
        if !seen.insert(name.as_str()) {
            return Err(ServeError::DuplicateBackend(name.clone()));
        }
        let reg = registry::find(name).ok_or_else(|| ServeError::UnknownBackend {
            requested: name.clone(),
            available: registry::names().iter().map(|n| n.to_string()).collect(),
        })?;
        regs.push(reg);
    }
    Ok(regs)
}

/// Cache counters as they appear in the JSON report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsRecord {
    /// Lookups served from the cache (one lookup per batch × backend).
    pub hits: u64,
    /// Lookups that compiled a plan.
    pub misses: u64,
    /// Misses whose `(callsite, backend)` was already compiled under a
    /// different signature (the `tf.function` retrace event).
    pub retraces: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
    /// Misses whose exact signature had been compiled before and was
    /// evicted — capacity churn, counted separately from first-compile
    /// misses (the ROADMAP cache-policy lens).
    pub evicted_recompiles: u64,
    /// Mean wall-clock milliseconds of one eviction-induced recompile
    /// (`0.0` when none occurred).
    pub mean_recompile_ms: f64,
    /// Plans resident at the end of the run.
    pub entries: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// One backend's view of the interleaved run — the A/B row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendRecord {
    /// Registry name ([`laab_backend::BackendId`]).
    pub backend: String,
    /// Logical requests driven through this backend (= the stream
    /// length; every backend sees identical traffic).
    pub requests: usize,
    /// Plan-cache lookups through this backend — one per admitted batch
    /// (equals `requests` when batching is disabled).
    pub lookups: usize,
    /// Lookups served from this backend's cache entries.
    pub hits: usize,
    /// Lookups that compiled a plan for this backend.
    pub misses: usize,
    /// `hits / lookups` — per-backend, since every backend compiles its
    /// own plans (no cross-backend hits by construction).
    pub hit_rate: f64,
    /// Estimated sustained throughput had this backend served the stream
    /// alone at this client count: `requests / (busy_secs / clients)`,
    /// over the serving-leg latencies. (Backends share one interleaved
    /// run, so per-backend wall time is not directly observable.)
    pub requests_per_sec: f64,
    /// Median serving latency through this backend, milliseconds. With
    /// batching enabled this is the batched leg's per-request share
    /// (amortized lookup + batched execution / occupancy).
    pub p50_ms: f64,
    /// 99th-percentile serving latency through this backend, ms.
    pub p99_ms: f64,
    /// Mean serving latency through this backend, milliseconds.
    pub mean_ms: f64,
    /// Mean serving latency of this backend's compiling (cold-trace)
    /// batches.
    pub cold_trace_mean_ms: f64,
    /// Mean serving latency of this backend's cache-hit batches (`0.0`
    /// when the stream produced no hits).
    pub cache_hit_mean_ms: f64,
    /// Mean per-request latency of the solo leg over coalesced batches
    /// (occupancy ≥ 2); `0.0` when batching is off.
    pub solo_mean_ms: f64,
    /// Mean per-request latency of the batched leg over the same
    /// population; `0.0` when batching is off.
    pub batched_mean_ms: f64,
    /// `solo_mean_ms / batched_mean_ms` — the throughput step batching
    /// buys on this backend (`0.0` when batching is off).
    pub batched_speedup: f64,
    /// First-listed backend's mean latency over this backend's mean —
    /// `> 1` means this backend is faster than the baseline, `1.0` for
    /// the baseline itself. This is the paper-style cross-strategy ratio
    /// the A/B exists to measure.
    pub speedup_vs_first: f64,
}

/// Per-family latency aggregate (across all backends).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyRecord {
    /// Family identifier ([`Family::id`]).
    pub family: String,
    /// The paper experiment the family is drawn from.
    pub experiment: String,
    /// Whether this family's plan column-stacks under batching (the
    /// GEMV-shaped chain/solve families) or takes the per-request
    /// fallback (the matrix families).
    pub stackable: bool,
    /// Executions of this family (stream occurrences × backends).
    pub requests: usize,
    /// Executions served via a cache-hit batch.
    pub hits: usize,
    /// Median serving latency, milliseconds.
    pub p50_ms: f64,
    /// Mean serving latency, milliseconds.
    pub mean_ms: f64,
    /// Mean per-request solo-leg latency over coalesced batches (`0.0`
    /// when batching is off or the family never coalesced).
    pub solo_mean_ms: f64,
    /// Mean per-request batched-leg latency over the same population.
    pub batched_mean_ms: f64,
    /// `solo_mean_ms / batched_mean_ms` — the family's batching win.
    /// This is the acceptance number for the GEMV-shaped families: their
    /// solo leg is memory-bound Level-2 work, their batched leg one
    /// multi-RHS GEMM.
    pub batched_speedup: f64,
}

/// The admission window's view of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchingRecord {
    /// Whether the window actually coalesced (`batch_window ≥ 2`).
    pub enabled: bool,
    /// The configured window.
    pub window: usize,
    /// Admitted batches (logical — every backend drives the same
    /// batches, so cache lookups are `batches × backends`).
    pub batches: usize,
    /// `requests / batches`.
    pub mean_occupancy: f64,
    /// Largest admitted batch.
    pub max_occupancy: usize,
    /// `occupancy_hist[i]` = batches of occupancy `i + 1`.
    pub occupancy_hist: Vec<usize>,
    /// Coalesced batches (occupancy ≥ 2) whose plan column-stacked.
    pub stacked_batches: usize,
    /// Coalesced batches that took the bitwise per-request fallback.
    pub fallback_batches: usize,
    /// Batches of occupancy 1 (no solo/batched split — one leg only).
    pub solo_batches: usize,
    /// Logical requests inside coalesced batches.
    pub batched_requests: usize,
    /// Mean per-request batched-leg latency over coalesced batches,
    /// all backends, milliseconds.
    pub batched_mean_ms: f64,
    /// Mean per-request solo-leg latency over the same population.
    pub solo_mean_ms: f64,
    /// `solo_mean_ms / batched_mean_ms` (`0.0` when nothing coalesced).
    pub batched_speedup: f64,
    /// Estimated sustained batched-leg throughput over coalesced
    /// executions: `executions / (busy_secs / clients)`.
    pub batched_requests_per_sec: f64,
    /// The solo-leg equivalent over the same population.
    pub solo_requests_per_sec: f64,
}

/// One live admission measurement: the queue's behavior under open-loop
/// Poisson arrivals at one `(window, deadline, rate)` operating point.
///
/// The drained-backlog phase cannot see queueing delay (every request is
/// already pending); these records come from the arrival-paced phases,
/// where the deadline-or-occupancy tradeoff is real: at high rates
/// groups fill and flush on occupancy, at low rates the deadline bounds
/// how long a lonely request waits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionRecord {
    /// The occupancy window of this operating point.
    pub window: usize,
    /// The deadline budget, microseconds (`0` = timer off).
    pub deadline_us: u64,
    /// Offered load, requests per second.
    pub arrival_rate: f64,
    /// Requests offered at this point.
    pub requests: usize,
    /// Batches released.
    pub batches: usize,
    /// Batches released because a group filled its window.
    pub occupancy_flushes: u64,
    /// Batches released because the head request's budget expired.
    pub deadline_flushes: u64,
    /// Partial batches released at queue close.
    pub drain_flushes: u64,
    /// Batches released early because the backlog crossed half capacity
    /// (always `0` for the unbounded live phases).
    pub pressure_flushes: u64,
    /// Requests refused at submit because the backlog was full (always
    /// `0` for the unbounded live phases).
    pub shed: u64,
    /// `requests / batches`.
    pub mean_occupancy: f64,
    /// Median queueing delay (submit → batch execution start), µs.
    pub queue_delay_p50_us: f64,
    /// 99th-percentile queueing delay, µs.
    pub queue_delay_p99_us: f64,
    /// Mean queueing delay, µs.
    pub queue_delay_mean_us: f64,
}

/// One overload operating point: arrival-paced traffic through a
/// **bounded** admission backlog with per-request deadlines. Where the
/// `sweep` grid measures queueing delay with an unbounded queue, this
/// sweep measures what the server *refuses*: past saturation, offered
/// load goes up while goodput plateaus — shed and expired counts absorb
/// the difference (`completed + shed + expired = requests`, exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadRecord {
    /// Offered load of this point, requests per second (a multiplier of
    /// the configured `arrival_rate`).
    pub arrival_rate: f64,
    /// Requests offered.
    pub requests: usize,
    /// Requests that executed before their deadline.
    pub completed: u64,
    /// Requests refused at submit (backlog full).
    pub shed: u64,
    /// Requests admitted but dropped at dequeue (deadline elapsed).
    pub expired: u64,
    /// Batches flushed early under backlog pressure.
    pub pressure_flushes: u64,
    /// The backlog bound this point ran under, in requests.
    pub backlog: usize,
    /// The per-request deadline, microseconds.
    pub deadline_us: u64,
    /// Offered load actually achieved: `requests / elapsed`.
    pub offered_rps: f64,
    /// Goodput: `completed / elapsed`. The curve of this against
    /// `offered_rps` is the capacity-planning output.
    pub goodput_rps: f64,
}

/// One optimizer level's view of the interleaved A/B — the `--opt` row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptLevelRecord {
    /// Level identifier ([`OptLevel::id`]): `"passes"` or `"egraph"`.
    pub level: String,
    /// Serving executions through this level (stream length × backends;
    /// every level sees identical traffic).
    pub executions: usize,
    /// Median serving latency through this level, milliseconds.
    pub p50_ms: f64,
    /// Mean serving latency through this level, milliseconds.
    pub mean_ms: f64,
    /// Compiled plans whose e-graph extraction chose a different tree
    /// than the input expression (always `0` for the passes level).
    pub changed_plans: usize,
    /// Compiles that hit a saturation budget and fell back to the input
    /// expression (always `0` for the passes level).
    pub saturation_budget_hits: u64,
}

/// Per-family extracted-cost vs. measured-latency comparison across the
/// two optimizer levels — the report the e-graph A/B exists to produce:
/// does the cost model's predicted win show up as a measured one?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptFamilyRecord {
    /// Family identifier ([`Family::id`]).
    pub family: String,
    /// Whether extraction chose a different tree than the family's input
    /// expression (at the base operand size).
    pub changed: bool,
    /// Whether saturation hit a budget on this family (the plan then
    /// served the input expression through the pass pipeline alone).
    pub budget_hit: bool,
    /// Modeled cost of the extracted expression (cost-model ticks; see
    /// `laab_rewrite::CostModel`).
    pub extracted_cost: u64,
    /// Modeled cost of the input expression, same units.
    pub original_cost: u64,
    /// Mean measured serving latency through the passes level, ms.
    pub passes_mean_ms: f64,
    /// Mean measured serving latency through the egraph level, ms.
    pub egraph_mean_ms: f64,
    /// `passes_mean_ms / egraph_mean_ms` — the measured counterpart of
    /// `original_cost / extracted_cost` (`0.0` when unmeasured).
    pub egraph_speedup: f64,
}

/// One family's share of the deferred backend's accounting: where its
/// tape ops went (groups, fused vs. unfused) and what the modeled
/// dispatch charge cost next to the measured kernel time — the
/// per-family dispatch-vs-compute split the cost model exists to expose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeferredFamilyRecord {
    /// Family identifier ([`Family::id`]).
    pub family: String,
    /// Ops this family's plans queued on tapes.
    pub tape_ops: u64,
    /// Flush groups dispatched (each charged one dispatch latency).
    pub groups: u64,
    /// Ops executed inside multi-op (fused) groups.
    pub fused_ops: u64,
    /// Ops dispatched alone.
    pub unfused_ops: u64,
    /// Modeled dispatch nanoseconds charged (`groups × dispatch_us ×
    /// 1000`, exactly — the charge is a configured constant).
    pub dispatch_ns: u64,
    /// Measured kernel nanoseconds inside flush groups.
    pub compute_ns: u64,
    /// `dispatch_ns / (dispatch_ns + compute_ns)` — the fraction of this
    /// family's deferred time that was launch overhead, not math.
    pub dispatch_share: f64,
    /// Mean per-request latency of the fusion-on A/B leg, ms.
    pub fused_mean_ms: f64,
    /// Mean per-request latency of the fusion-off leg (one dispatch
    /// group per op) over the same requests, interleaved.
    pub unfused_mean_ms: f64,
    /// `unfused_mean_ms / fused_mean_ms` — what flush-time fusion buys
    /// this family under the configured dispatch cost (`0.0` when
    /// unmeasured).
    pub fused_speedup: f64,
}

/// The deferred backend's view of the run: tape/flush/fusion counters
/// summed over every serving leg, the modeled dispatch-vs-compute split,
/// the interleaved fusion A/B, and the post-drain engine-equivalence
/// probes. Present in every report; all-zero with `enabled: false` when
/// `deferred` was not among the backends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeferredRecord {
    /// Whether the deferred backend was among `--backends`.
    pub enabled: bool,
    /// The configured per-group dispatch charge, µs.
    pub dispatch_us: u64,
    /// Whether flush-time fusion was on for the serving legs.
    pub fusion: bool,
    /// Tape capacity (queued ops that force a capacity flush).
    pub tape_capacity: usize,
    /// Total ops queued on tapes across all serving legs.
    pub tape_ops: u64,
    /// Longest tape observed at any flush.
    pub max_tape_len: u64,
    /// Flushes forced by a full tape.
    pub flush_capacity: u64,
    /// Flushes forced by an output materialization.
    pub flush_materialize: u64,
    /// Flushes forced by a host-side op reading a pending value.
    pub flush_barrier: u64,
    /// Dispatch groups launched (the unit the dispatch charge bills).
    pub groups: u64,
    /// Ops executed inside multi-op (fused) groups.
    pub fused_ops: u64,
    /// Ops dispatched alone.
    pub unfused_ops: u64,
    /// Total modeled dispatch nanoseconds (`groups × dispatch_us ×
    /// 1000`, exactly — CI asserts this identity).
    pub dispatch_ns: u64,
    /// Total measured kernel nanoseconds inside flush groups.
    pub compute_ns: u64,
    /// Post-drain engine-vs-deferred equivalence probes executed (one
    /// per distinct `(family, size, dtype)`).
    pub probes: usize,
    /// Probes disagreeing beyond the documented tolerance (relative
    /// distance > 1e-9 f64 / > 1e-3 f32). Soundness gate: CI asserts 0.
    pub mismatches: u64,
    /// Per-family splits, in [`Family::ALL`] order (families the stream
    /// never exercised are omitted).
    pub families: Vec<DeferredFamilyRecord>,
}

/// The full machine-readable report (`BENCH_serve.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Format tag ([`SERVE_REPORT_SCHEMA`]).
    pub schema: String,
    /// Whether the smoke protocol was used.
    pub smoke: bool,
    /// Logical requests drained.
    pub requests: usize,
    /// Serving executions: `requests × backends` (each request is driven
    /// through every selected backend, interleaved).
    pub executions: usize,
    /// The configured client count (`0` = auto-detect).
    pub clients_requested: usize,
    /// The client count actually used. Auto-detection caps at 8;
    /// explicit counts are never clamped — recording both keeps sweeps
    /// on bigger boxes interpretable.
    pub clients_resolved: usize,
    /// Base operand size.
    pub base_n: usize,
    /// Stream/operand seed.
    pub seed: u64,
    /// The dtype filter: `"mixed"`, `"f32"`, or `"f64"`.
    pub dtype: String,
    /// The configured admission window (`0`/`1` = batching off).
    pub batch_window: usize,
    /// The configured partial-batch deadline, µs (`0` = timer off).
    pub batch_deadline_us: u64,
    /// Offered load of the live phases, requests per second.
    pub arrival_rate: f64,
    /// Distinct signatures across the run (per-backend signatures — the
    /// compile workload; `backends × ` the stream's structural variety).
    pub distinct_signatures: usize,
    /// Wall-clock seconds for the whole drain. With batching enabled
    /// this includes the interleaved solo A/B leg, so it overstates the
    /// cost of pure batched serving — see [`BatchingRecord`] for the
    /// split.
    pub wall_secs: f64,
    /// Harness executions per wall second (`executions / wall_secs`;
    /// includes the A/B overhead when batching is on).
    pub requests_per_sec: f64,
    /// Median serving latency, milliseconds (all backends).
    pub p50_ms: f64,
    /// 99th-percentile serving latency, milliseconds (all backends).
    pub p99_ms: f64,
    /// Mean serving latency of executions in compiling batches (trace +
    /// optimize + schedule amortized over the batch), milliseconds.
    pub cold_trace_mean_ms: f64,
    /// Mean serving latency of executions in cache-hit batches. `0.0`
    /// when the stream produced no hits (every signature distinct).
    pub cache_hit_mean_ms: f64,
    /// `cold_trace_mean_ms / cache_hit_mean_ms` — the amortization a
    /// cache hit buys (> 1 when caching pays; `0.0` when the stream
    /// produced no hits).
    pub cache_hit_speedup: f64,
    /// The admission window's coalescing stats and the batched-vs-solo
    /// interleaved measurement (the deterministic backlog phase).
    pub batching: BatchingRecord,
    /// Live deadline-or-occupancy behavior at the configured operating
    /// point: open-loop Poisson arrivals at `arrival_rate` through the
    /// first-listed backend.
    pub admission: AdmissionRecord,
    /// The window × arrival-rate sweep grid (windows `{1, max(2,
    /// batch_window)}` × rates `{arrival_rate/4, arrival_rate}`), same
    /// measurement as `admission` on a shorter stream prefix.
    pub sweep: Vec<AdmissionRecord>,
    /// The overload sweep: goodput vs. offered load through a bounded
    /// backlog with per-request deadlines, at rate multipliers
    /// `{1, 2, 4, 8} × arrival_rate` over the sweep stream prefix.
    pub overload: Vec<OverloadRecord>,
    /// Shared plan-cache counters (all backends; per-backend entries are
    /// independent by signature construction).
    pub cache: CacheStatsRecord,
    /// Per-backend A/B records, in `--backends` order (first = ratio
    /// baseline).
    pub backends: Vec<BackendRecord>,
    /// Per-family aggregates, in experiment order.
    pub families: Vec<FamilyRecord>,
    /// The configured optimizer level (`"passes"` or `"egraph"`; the
    /// latter means both levels ran interleaved).
    pub opt: String,
    /// Per-level A/B records, in lane order (a single entry for
    /// passes-only runs).
    pub opt_levels: Vec<OptLevelRecord>,
    /// Per-family extracted-cost vs. measured-latency comparison (empty
    /// for passes-only runs).
    pub opt_families: Vec<OptFamilyRecord>,
    /// Post-drain cross-level numeric probes executed: one per distinct
    /// `(family, size, dtype)` × backend (0 for passes-only runs).
    pub opt_probes: usize,
    /// Probes where the two levels' outputs disagreed beyond the
    /// documented tolerance (relative distance > 1e-9 for f64, > 1e-3
    /// for f32). Soundness gate: CI asserts this is zero.
    pub opt_mismatches: u64,
    /// E-graph compiles that hit a saturation budget and fell back to
    /// the pass pipeline.
    pub saturation_budget_hits: u64,
    /// The deferred backend's tape/flush/fusion accounting and fusion
    /// A/B (`enabled: false`, all-zero, when `deferred` was not served).
    pub deferred: DeferredRecord,
}

impl ServeReport {
    /// Serialize as pretty-printed JSON (the on-disk `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ServeReport serializes infallibly")
    }

    /// Parse a report back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let report: ServeReport = serde_json::from_str(text)?;
        if report.schema != SERVE_REPORT_SCHEMA {
            return Err(serde_json::Error(format!(
                "unsupported report schema `{}` (expected `{SERVE_REPORT_SCHEMA}`)",
                report.schema
            )));
        }
        Ok(report)
    }

    /// One-row-per-backend A/B overview for terminal output.
    pub fn backend_table(&self) -> laab_stats::Table {
        let mut t = laab_stats::Table::new(
            format!(
                "backend A/B — {} requests × {} backend(s), interleaved",
                self.requests,
                self.backends.len()
            ),
            &["backend", "req/s", "p50 [ms]", "p99 [ms]", "hit rate", "batch x", "vs first"],
        );
        for b in &self.backends {
            t.push_row(vec![
                b.backend.clone(),
                format!("{:.0}", b.requests_per_sec),
                format!("{:.3}", b.p50_ms),
                format!("{:.3}", b.p99_ms),
                format!("{:.3}", b.hit_rate),
                format!("{:.2}x", b.batched_speedup),
                format!("{:.2}x", b.speedup_vs_first),
            ]);
        }
        t
    }

    /// One-row-per-family overview for terminal output.
    pub fn summary_table(&self) -> laab_stats::Table {
        let mut t = laab_stats::Table::new(
            format!(
                "laab serve — {} requests × {} backend(s), {} clients, window {}, \
                 {:.0} exec/s, hit rate {:.3}",
                self.requests,
                self.backends.len(),
                self.clients_resolved,
                self.batch_window,
                self.requests_per_sec,
                self.cache.hit_rate
            ),
            &["family", "experiment", "requests", "stack", "p50 [ms]", "solo [ms]", "batch x"],
        );
        for f in &self.families {
            t.push_row(vec![
                f.family.clone(),
                f.experiment.clone(),
                f.requests.to_string(),
                if f.stackable { "rhs".into() } else { "fallback".to_string() },
                format!("{:.3}", f.p50_ms),
                format!("{:.3}", f.solo_mean_ms),
                format!("{:.2}x", f.batched_speedup),
            ]);
        }
        t
    }
}

/// Per-dtype operand bindings for one `(family, n)` pool entry.
struct EnvPair {
    f64: Env<f64>,
    f32: Env<f32>,
}

/// Lookup-outcome codes stored in the per-`(batch, backend)` slot array.
const OUTCOME_HIT: u8 = 1;
const OUTCOME_COMPILED: u8 = 2;

/// Batch-kind codes stored in the per-batch slot array.
const BATCH_SOLO: u8 = 1;
const BATCH_STACKED: u8 = 2;
const BATCH_FALLBACK: u8 = 3;

/// One admitted batch: stream indices of same-signature requests.
struct Batch {
    idx: Vec<usize>,
}

/// The deterministic backlog admission: the in-process loop is the
/// loopback composition of the same [`AdmissionQueue`] the network
/// server runs — every request submitted up front, then the queue closed
/// and drained. With no live timer, groups (keyed by family, size,
/// dtype — what determines the per-backend [`Signature`]) chunk at every
/// `window`-th arrival with the remainder drained at close, which is
/// exactly the pre-v4 fixed-count chunking; batches are re-emitted in
/// stream order of their first member, so the v3 counters stay
/// bit-for-bit deterministic.
fn admit(mix: &[Request], window: usize) -> Vec<Batch> {
    let flushed = AdmissionQueue::backlog(
        window,
        mix.iter().enumerate().map(|(i, r)| ((r.family, r.n, r.dtype), i)),
    );
    let mut batches: Vec<Batch> = flushed.into_iter().map(|b| Batch { idx: b.items }).collect();
    batches.sort_by_key(|b| b.idx[0]);
    batches
}

/// The per-execution / per-batch measurement slots shared by the clients.
/// A *lane* is one `(backend, optimizer level)` pair — the unit the A/B
/// interleaves; with `--opt passes` lanes coincide with backends.
struct Slots {
    /// Serving-leg latency per `(request, lane)` (ns).
    serving: Vec<AtomicU64>,
    /// Solo-leg latency per `(request, lane)` (ns).
    solo: Vec<AtomicU64>,
    /// Batched-leg per-request share per `(request, lane)` (ns; 0
    /// when the request's batch did not coalesce).
    batched: Vec<AtomicU64>,
    /// Lookup outcome per `(batch, lane)`.
    outcome: Vec<AtomicU8>,
    /// Batch kind per batch ([`BATCH_SOLO`]/[`BATCH_STACKED`]/
    /// [`BATCH_FALLBACK`]; identical across lanes — recorded from lane 0,
    /// the first backend's passes-level plan).
    kind: Vec<AtomicU8>,
    /// Per-family stackability as observed from the compiled plans
    /// (index = position in [`Family::ALL`]; 0 unknown, 1 stackable,
    /// 2 fallback).
    fam_stackable: Vec<AtomicU8>,
    /// What equality saturation did per `(family, n)` — recorded at
    /// e-graph-level compiles (deterministic per key: every compile of
    /// the same family and size extracts the same tree).
    egraph: Mutex<HashMap<(Family, usize), EgraphReport>>,
    /// E-graph compiles that hit a saturation budget and fell back.
    budget_hits: AtomicU64,
    /// Per-family deferred-backend accounting, indexed by position in
    /// [`Family::ALL`] (untouched when `deferred` is not a lane).
    deferred: Mutex<Vec<DeferredAccum>>,
}

/// One family's accumulated deferred-backend numbers: the tape counters
/// drained from the serving legs plus the interleaved fusion A/B sums.
#[derive(Debug, Clone, Copy, Default)]
struct DeferredAccum {
    /// Tape/flush/fusion/dispatch counters from the serving legs.
    stats: laab_deferred::RunStats,
    /// Total wall nanoseconds of the fusion-on A/B legs.
    fused_ns: u64,
    /// Total wall nanoseconds of the fusion-off legs, same requests.
    unfused_ns: u64,
    /// Requests the A/B legs drove (denominator for both means).
    ab_requests: u64,
}

/// Drive one batch through every `(backend, level)` lane, interleaved.
/// The solo and batched legs alternate order across `(batch, lane)` so
/// neither leg systematically benefits from the other's cache warming.
#[allow(clippy::too_many_arguments)]
fn drive_batch<T: BackendScalar>(
    bi: usize,
    batch: &Batch,
    mix: &[Request],
    envs: &[&Env<T>],
    lanes: &[(&'static Registration, OptLevel)],
    cache: &PlanCache,
    fw: &Framework,
    slots: &Slots,
    dtuning: laab_deferred::Tuning,
) {
    let nb = lanes.len();
    let occ = batch.idx.len();
    let req0 = &mix[batch.idx[0]];
    for (ki, &(reg, level)) in lanes.iter().enumerate() {
        let t_lookup = Instant::now();
        let sig = req0.signature_opt(reg.id(), level);
        let (plan, lookup) = cache.get_or_compile(sig, || {
            Plan::compile_opt(
                fw,
                &req0.family.expr(req0.n),
                &req0.family.ctx(req0.n),
                reg,
                req0.family.varying_operands(),
                level,
            )
        });
        let lookup_ns = t_lookup.elapsed().as_nanos() as u64;
        slots.outcome[bi * nb + ki].store(
            if lookup == Lookup::Hit { OUTCOME_HIT } else { OUTCOME_COMPILED },
            Ordering::Relaxed,
        );
        if lookup != Lookup::Hit {
            if let Some(rep) = plan.egraph_report() {
                if rep.budget_hit {
                    slots.budget_hits.fetch_add(1, Ordering::Relaxed);
                }
                slots.egraph.lock().expect("egraph reports").insert((req0.family, req0.n), rep);
            }
        }
        if ki == 0 {
            let kind = if occ < 2 {
                BATCH_SOLO
            } else if plan.stackable() {
                BATCH_STACKED
            } else {
                BATCH_FALLBACK
            };
            slots.kind[bi].store(kind, Ordering::Relaxed);
            let fam_idx = Family::ALL.iter().position(|f| *f == req0.family).unwrap();
            slots.fam_stackable[fam_idx]
                .store(if plan.stackable() { 1 } else { 2 }, Ordering::Relaxed);
        }

        let run_solo = || -> Vec<u64> {
            batch
                .idx
                .iter()
                .enumerate()
                .map(|(j, _)| {
                    let t = Instant::now();
                    std::hint::black_box(plan.execute::<T>(envs[j]));
                    t.elapsed().as_nanos() as u64
                })
                .collect()
        };
        let run_batched = || -> u64 {
            let t = Instant::now();
            std::hint::black_box(plan.execute_batched::<T>(envs));
            t.elapsed().as_nanos() as u64
        };

        let legs = || {
            if occ >= 2 {
                // Interleave the two legs, alternating which goes first.
                let (solo_each, batched_total) = if (bi + ki).is_multiple_of(2) {
                    let s = run_solo();
                    (s, run_batched())
                } else {
                    let b = run_batched();
                    (run_solo(), b)
                };
                let share = (lookup_ns + batched_total) / occ as u64;
                for (j, &r) in batch.idx.iter().enumerate() {
                    slots.solo[r * nb + ki].store(solo_each[j], Ordering::Relaxed);
                    slots.batched[r * nb + ki].store(batched_total / occ as u64, Ordering::Relaxed);
                    slots.serving[r * nb + ki].store(share, Ordering::Relaxed);
                }
            } else {
                let solo_each = run_solo();
                let r = batch.idx[0];
                slots.solo[r * nb + ki].store(solo_each[0], Ordering::Relaxed);
                slots.serving[r * nb + ki].store(lookup_ns + solo_each[0], Ordering::Relaxed);
            }
        };
        if reg.name() == laab_deferred::BACKEND_NAME {
            // Deferred lane: run the serving legs under the configured
            // tape tuning and drain the thread-local counters they
            // accumulate, then drive an extra interleaved fusion-on vs.
            // fusion-off pair (per-request tapes both ways — the only
            // variable is whether the flush pass fuses). The A/B legs'
            // own counters are discarded: the reported tape stats
            // describe the serving legs alone.
            let _ = laab_deferred::take_run_stats();
            laab_deferred::with_tuning(dtuning, legs);
            let stats = laab_deferred::take_run_stats();
            // The A/B replays the batch in its serving shape: coalesced
            // windows go through `execute_batched`, so fusion-off pays
            // one launch per right-hand side where fusion-on pays one
            // per window — the cross-request fusion win, measured on the
            // chain/solve windows where it exists.
            let ab = |fuse: bool| -> u64 {
                let t = Instant::now();
                laab_deferred::with_tuning(laab_deferred::Tuning { fuse, ..dtuning }, || {
                    if occ >= 2 {
                        std::hint::black_box(plan.execute_batched::<T>(envs));
                    } else {
                        std::hint::black_box(plan.execute::<T>(envs[0]));
                    }
                });
                t.elapsed().as_nanos() as u64
            };
            let (fused_ns, unfused_ns) = if (bi + ki).is_multiple_of(2) {
                let f = ab(true);
                (f, ab(false))
            } else {
                let u = ab(false);
                (ab(true), u)
            };
            let _ = laab_deferred::take_run_stats();
            let fam_idx = Family::ALL.iter().position(|f| *f == req0.family).unwrap();
            let mut acc = slots.deferred.lock().expect("deferred accounting");
            let a = &mut acc[fam_idx];
            a.stats.merge(&stats);
            a.fused_ns += fused_ns;
            a.unfused_ns += unfused_ns;
            a.ab_requests += occ as u64;
        } else {
            legs();
        }
    }
}

/// Execute one request's plan at both optimizer levels through `reg` and
/// compare the outputs — the post-drain soundness probe. The cache is
/// warm, so both lookups are hits (compile is a fallback for streams
/// shorter than the key set). The request's payload vectors are drawn on
/// top of the pool bindings exactly as the drain did, so the comparison
/// covers the served data. Returns `true` on disagreement beyond `tol`
/// (relative distance).
fn probe_levels<T: BackendScalar>(
    req: &Request,
    pool_env: &Env<T>,
    reg: &'static Registration,
    cache: &PlanCache,
    fw: &Framework,
    seed: u64,
    tol: f64,
) -> bool {
    let owned;
    let env: &Env<T> = if req.family.payload_operands().is_empty() {
        pool_env
    } else {
        owned = req.env_from_pool(pool_env, seed);
        &owned
    };
    let run = |opt: OptLevel| {
        let (plan, _) = cache.get_or_compile(req.signature_opt(reg.id(), opt), || {
            Plan::compile_opt(
                fw,
                &req.family.expr(req.n),
                &req.family.ctx(req.n),
                reg,
                req.family.varying_operands(),
                opt,
            )
        });
        plan.execute::<T>(env)
    };
    let passes = run(OptLevel::Passes);
    let egraph = run(OptLevel::Egraph);
    passes.len() != egraph.len() || passes.iter().zip(&egraph).any(|(a, b)| !a.approx_eq(b, tol))
}

/// Execute one request's plan through `engine` and through the deferred
/// tape on identical bindings and compare — the deferred soundness
/// probe. Fusion's value-changing rewrites (alpha folding, same-LHS
/// coalescing) are ULP-level, so the tolerance matches the optimizer
/// probes; everything else the tape does is pure reordering and stays
/// bitwise. Returns `true` on disagreement beyond `tol`.
#[allow(clippy::too_many_arguments)]
fn probe_deferred<T: BackendScalar>(
    req: &Request,
    pool_env: &Env<T>,
    deferred: &'static Registration,
    engine: &'static Registration,
    cache: &PlanCache,
    fw: &Framework,
    seed: u64,
    dtuning: laab_deferred::Tuning,
    tol: f64,
) -> bool {
    let owned;
    let env: &Env<T> = if req.family.payload_operands().is_empty() {
        pool_env
    } else {
        owned = req.env_from_pool(pool_env, seed);
        &owned
    };
    let run = |reg: &'static Registration| {
        let (plan, _) = cache.get_or_compile(req.signature(reg.id()), || {
            Plan::compile_with_varying(
                fw,
                &req.family.expr(req.n),
                &req.family.ctx(req.n),
                reg,
                req.family.varying_operands(),
            )
        });
        plan.execute::<T>(env)
    };
    let want = run(engine);
    let got =
        laab_deferred::with_tuning(laab_deferred::Tuning { dispatch_ns: 0, ..dtuning }, || {
            run(deferred)
        });
    let _ = laab_deferred::take_run_stats();
    want.len() != got.len() || want.iter().zip(&got).any(|(a, b)| !a.approx_eq(b, tol))
}

/// One live-phase job: a stream index plus its submit time (the
/// queue-delay anchor).
struct LiveJob {
    idx: usize,
    at: Instant,
}

/// Execute one live batch through `reg`: one cache lookup, then the
/// batched execution (solo at occupancy 1) — the serving leg only, no
/// A/B interleave; the live phases measure queueing, not kernels.
fn execute_live<T: BackendScalar>(
    idx: &[usize],
    mix: &[Request],
    pool_env: &Env<T>,
    reg: &'static Registration,
    cache: &PlanCache,
    fw: &Framework,
    seed: u64,
) {
    let req0 = &mix[idx[0]];
    let has_payload = !req0.family.payload_operands().is_empty();
    let owned: Vec<Env<T>> = if has_payload {
        idx.iter().map(|&r| mix[r].env_from_pool(pool_env, seed)).collect()
    } else {
        Vec::new()
    };
    let refs: Vec<&Env<T>> =
        if has_payload { owned.iter().collect() } else { idx.iter().map(|_| pool_env).collect() };
    let (plan, _) = cache.get_or_compile(req0.signature(reg.id()), || {
        Plan::compile_with_varying(
            fw,
            &req0.family.expr(req0.n),
            &req0.family.ctx(req0.n),
            reg,
            req0.family.varying_operands(),
        )
    });
    if refs.len() >= 2 {
        std::hint::black_box(plan.execute_batched::<T>(&refs));
    } else {
        std::hint::black_box(plan.execute::<T>(refs[0]));
    }
}

/// Measure the admission queue live: a producer paces the stream as an
/// open-loop Poisson process at `rate` requests/s, `clients` consumers
/// drain batches through the cache, and every request's queueing delay
/// (submit → batch execution start) is sampled. The producer lets
/// trailing partial groups expire their deadline before closing, so a
/// low-rate run reports *deadline* flushes rather than converting its
/// tail into drain flushes.
#[allow(clippy::too_many_arguments)]
fn live_phase(
    mix: &[Request],
    pools: &HashMap<(Family, usize), EnvPair>,
    reg: &'static Registration,
    cache: &PlanCache,
    fw: &Framework,
    clients: usize,
    window: usize,
    deadline_us: u64,
    rate: f64,
    seed: u64,
) -> AdmissionRecord {
    let deadline = if window >= 2 && deadline_us > 0 {
        Some(Duration::from_micros(deadline_us))
    } else {
        None
    };
    let queue: AdmissionQueue<(Family, usize, Dtype), LiveJob> =
        AdmissionQueue::new(window, deadline);
    let delays: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(mix.len()));
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            let queue = &queue;
            let delays = &delays;
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Some(batch) = queue.next_batch() {
                    let start = Instant::now();
                    for job in &batch.items {
                        local.push(start.duration_since(job.at).as_nanos() as f64 / 1e3);
                    }
                    let idx: Vec<usize> = batch.items.iter().map(|j| j.idx).collect();
                    let req0 = &mix[idx[0]];
                    let pool = &pools[&(req0.family, req0.n)];
                    match req0.dtype {
                        Dtype::F64 => execute_live(&idx, mix, &pool.f64, reg, cache, fw, seed),
                        Dtype::F32 => execute_live(&idx, mix, &pool.f32, reg, cache, fw, seed),
                    }
                }
                delays.lock().expect("delay samples").extend(local);
            });
        }
        let queue = &queue;
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A_1DED);
            let t0 = Instant::now();
            let mut offset = Duration::ZERO;
            for (i, r) in mix.iter().enumerate() {
                let u: f64 = rng.gen();
                offset += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
                let target = t0 + offset;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                queue.submit((r.family, r.n, r.dtype), LiveJob { idx: i, at: Instant::now() });
            }
            if deadline.is_some() {
                while queue.pending_groups() > 0 {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            queue.close();
        });
    });
    let stats = queue.stats();
    let samples = delays.into_inner().expect("delay samples");
    let (p50, p99, mean) = if samples.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let s = Samples::new(samples);
        (s.median(), s.quantile(0.99), s.mean())
    };
    AdmissionRecord {
        window: queue.window(),
        deadline_us: if deadline.is_some() { deadline_us } else { 0 },
        arrival_rate: rate,
        requests: mix.len(),
        batches: stats.batches() as usize,
        occupancy_flushes: stats.occupancy_flushes,
        deadline_flushes: stats.deadline_flushes,
        drain_flushes: stats.drain_flushes,
        pressure_flushes: stats.pressure_flushes,
        shed: stats.shed,
        mean_occupancy: if stats.batches() > 0 {
            mix.len() as f64 / stats.batches() as f64
        } else {
            0.0
        },
        queue_delay_p50_us: p50,
        queue_delay_p99_us: p99,
        queue_delay_mean_us: mean,
    }
}

/// One overload-phase job: a stream index, its submit time, and the
/// absolute instant its per-request deadline expires.
struct OverloadJob {
    idx: usize,
    deadline: Instant,
}

/// Measure the serving loop past saturation: a producer paces the stream
/// at `rate` through a queue **bounded** at `capacity`, each request
/// carrying a deadline of `req_deadline_us`. Consumers drop expired
/// requests at dequeue (the same pre-execution enforcement the network
/// server applies) and execute the rest. Every offered request lands in
/// exactly one of completed / shed / expired.
#[allow(clippy::too_many_arguments)]
fn overload_phase(
    mix: &[Request],
    pools: &HashMap<(Family, usize), EnvPair>,
    reg: &'static Registration,
    cache: &PlanCache,
    fw: &Framework,
    clients: usize,
    window: usize,
    batch_deadline_us: u64,
    capacity: usize,
    req_deadline_us: u64,
    rate: f64,
    seed: u64,
) -> OverloadRecord {
    let flush_deadline = if window >= 2 && batch_deadline_us > 0 {
        Some(Duration::from_micros(batch_deadline_us))
    } else {
        None
    };
    let queue: AdmissionQueue<(Family, usize, Dtype), OverloadJob> =
        AdmissionQueue::bounded(window, flush_deadline, capacity);
    let completed = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let req_deadline = Duration::from_micros(req_deadline_us);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            let queue = &queue;
            let completed = &completed;
            let expired = &expired;
            scope.spawn(move || {
                while let Some(batch) = queue.next_batch() {
                    let now = Instant::now();
                    let mut live = Vec::with_capacity(batch.items.len());
                    for job in &batch.items {
                        if now >= job.deadline {
                            expired.fetch_add(1, Ordering::Relaxed);
                        } else {
                            live.push(job.idx);
                        }
                    }
                    if live.is_empty() {
                        continue;
                    }
                    let req0 = &mix[live[0]];
                    let pool = &pools[&(req0.family, req0.n)];
                    match req0.dtype {
                        Dtype::F64 => execute_live(&live, mix, &pool.f64, reg, cache, fw, seed),
                        Dtype::F32 => execute_live(&live, mix, &pool.f32, reg, cache, fw, seed),
                    }
                    completed.fetch_add(live.len() as u64, Ordering::Relaxed);
                }
            });
        }
        let queue = &queue;
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x05E2_10AD);
            let t0p = Instant::now();
            let mut offset = Duration::ZERO;
            for (i, r) in mix.iter().enumerate() {
                let u: f64 = rng.gen();
                offset += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
                let target = t0p + offset;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let now = Instant::now();
                // The bounded queue sheds for us and counts it; nothing
                // to do for a refused submit but move on.
                let _ = queue.submit(
                    (r.family, r.n, r.dtype),
                    OverloadJob { idx: i, deadline: now + req_deadline },
                );
            }
            queue.close();
        });
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = queue.stats();
    let done = completed.load(Ordering::Relaxed);
    OverloadRecord {
        arrival_rate: rate,
        requests: mix.len(),
        completed: done,
        shed: stats.shed,
        expired: expired.load(Ordering::Relaxed),
        pressure_flushes: stats.pressure_flushes,
        backlog: capacity,
        deadline_us: req_deadline_us,
        offered_rps: mix.len() as f64 / elapsed,
        goodput_rps: done as f64 / elapsed,
    }
}

/// Drain a synthetic request stream through the admission window and the
/// plan cache, driving each batch through every configured backend
/// interleaved, and collect the report.
///
/// Operand pools are generated up front (a client serving traffic already
/// holds its data; operand generation is not request latency); the
/// per-request payload vectors are cloned on top of the pool env per
/// batch, also outside the timed sections. Serving latency covers
/// signature canonicalization, the cache lookup, any compile, and plan
/// execution — amortized over the batch, exactly what a batching
/// `tf.function` server pays per request.
///
/// # Errors
/// [`ServeError`] when the backend list is empty, names an unknown or
/// duplicate backend, or selects a backend that cannot execute a dtype
/// present in the stream — all rejected here, before any dispatch.
pub fn run(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    let regs = resolve_backends(&cfg.backends)?;
    let levels = cfg.opt_levels();
    let nl = levels.len();
    // A lane is one (backend, level) pair: the unit the drain interleaves
    // and the stride of every per-execution slot array. Backend-major so
    // one backend's lanes stay adjacent.
    let lanes: Vec<(&'static Registration, OptLevel)> =
        regs.iter().flat_map(|&reg| levels.iter().map(move |&l| (reg, l))).collect();
    let nlanes = lanes.len();
    let clients = cfg.resolved_clients();
    let mix = synthetic_mix(cfg.requests, cfg.n, cfg.seed, cfg.churn_every, cfg.dtype);

    // Validate dtype support against the dtypes actually present, so an
    // unsupported combination is a named error here instead of a panic
    // deep inside plan dispatch.
    for reg in &regs {
        for dtype in [Dtype::F32, Dtype::F64] {
            if mix.iter().any(|r| r.dtype == dtype) && !reg.supports(dtype) {
                return Err(ServeError::UnsupportedDtype {
                    backend: reg.name().to_string(),
                    dtype,
                });
            }
        }
    }

    // Pre-generate operand pools and count distinct per-backend signatures.
    let mut pools: HashMap<(Family, usize), EnvPair> = HashMap::new();
    let mut distinct = HashSet::new();
    for req in &mix {
        pools.entry((req.family, req.n)).or_insert_with(|| EnvPair {
            f64: req.family.env::<f64>(req.n, cfg.seed),
            f32: req.family.env::<f32>(req.n, cfg.seed),
        });
        for &(reg, level) in &lanes {
            distinct.insert(req.signature_opt(reg.id(), level).hash());
        }
    }

    let batches = admit(&mix, cfg.batch_window);
    let nbatches = batches.len();
    let cache = PlanCache::with_shards(cfg.cache_capacity * nlanes, cfg.shards);
    let fw = Framework::flow();
    let executions = mix.len() * nlanes;
    let slots = Slots {
        serving: (0..executions).map(|_| AtomicU64::new(0)).collect(),
        solo: (0..executions).map(|_| AtomicU64::new(0)).collect(),
        batched: (0..executions).map(|_| AtomicU64::new(0)).collect(),
        outcome: (0..nbatches * nlanes).map(|_| AtomicU8::new(0)).collect(),
        kind: (0..nbatches).map(|_| AtomicU8::new(0)).collect(),
        fam_stackable: Family::ALL.iter().map(|_| AtomicU8::new(0)).collect(),
        egraph: Mutex::new(HashMap::new()),
        budget_hits: AtomicU64::new(0),
        deferred: Mutex::new(vec![DeferredAccum::default(); Family::ALL.len()]),
    };
    let dtuning = cfg.deferred_tuning();

    let t0 = Instant::now();
    parallel_for(clients, nbatches, |bi| {
        let batch = &batches[bi];
        let req0 = &mix[batch.idx[0]];
        let pool = &pools[&(req0.family, req0.n)];
        let has_payload = !req0.family.payload_operands().is_empty();
        // Operand binding happens outside the timed sections: a server
        // holds its request payloads before admission.
        match req0.dtype {
            Dtype::F64 => {
                let owned: Vec<Env<f64>> = if has_payload {
                    batch.idx.iter().map(|&r| mix[r].env_from_pool(&pool.f64, cfg.seed)).collect()
                } else {
                    Vec::new()
                };
                let refs: Vec<&Env<f64>> = if has_payload {
                    owned.iter().collect()
                } else {
                    batch.idx.iter().map(|_| &pool.f64).collect()
                };
                drive_batch(bi, batch, &mix, &refs, &lanes, &cache, &fw, &slots, dtuning);
            }
            Dtype::F32 => {
                let owned: Vec<Env<f32>> = if has_payload {
                    batch.idx.iter().map(|&r| mix[r].env_from_pool(&pool.f32, cfg.seed)).collect()
                } else {
                    Vec::new()
                };
                let refs: Vec<&Env<f32>> = if has_payload {
                    owned.iter().collect()
                } else {
                    batch.idx.iter().map(|_| &pool.f32).collect()
                };
                drive_batch(bi, batch, &mix, &refs, &lanes, &cache, &fw, &slots, dtuning);
            }
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    // Snapshot the deterministic backlog counters *before* the live
    // phases (and the probes below) touch the (shared, now warm) cache,
    // so the reported cache record stays a pure function of the stream.
    let cache_stats = cache.stats();

    // ---- cross-level numeric probes: the soundness gate ----
    // One probe per distinct (family, size, dtype) × backend, executed
    // against the warm cache: the passes plan and the egraph plan run on
    // identical bindings and must agree within the documented tolerance
    // (relative distance ≤ 1e-9 for f64 / 1e-3 for f32 — wide enough for
    // accumulation-order changes like reassociation and factoring, tight
    // enough that any wrong rewrite trips it).
    let mut opt_probes = 0usize;
    let mut opt_mismatches = 0u64;
    if nl > 1 {
        let mut probed = HashSet::new();
        for req in &mix {
            if !probed.insert((req.family, req.n, req.dtype)) {
                continue;
            }
            let pool = &pools[&(req.family, req.n)];
            for &reg in &regs {
                let mismatch = match req.dtype {
                    Dtype::F64 => probe_levels(req, &pool.f64, reg, &cache, &fw, cfg.seed, 1e-9),
                    Dtype::F32 => probe_levels(req, &pool.f32, reg, &cache, &fw, cfg.seed, 1e-3),
                };
                opt_probes += 1;
                opt_mismatches += u64::from(mismatch);
            }
        }
    }

    // ---- deferred equivalence probes: the tape soundness gate ----
    // One probe per distinct (family, size, dtype): the engine plan and
    // the deferred tape run on identical bindings and must agree within
    // the optimizer-probe tolerance (the tape's value-changing fusions
    // are ULP-level; everything else is pure reordering).
    let deferred_reg = regs.iter().copied().find(|r| r.name() == laab_deferred::BACKEND_NAME);
    let mut deferred_probes = 0usize;
    let mut deferred_mismatches = 0u64;
    if let Some(dreg) = deferred_reg {
        let engine = registry::find("engine").expect("engine is a built-in");
        let mut probed = HashSet::new();
        for req in &mix {
            if !probed.insert((req.family, req.n, req.dtype)) {
                continue;
            }
            let pool = &pools[&(req.family, req.n)];
            let mismatch = match req.dtype {
                Dtype::F64 => probe_deferred(
                    req, &pool.f64, dreg, engine, &cache, &fw, cfg.seed, dtuning, 1e-9,
                ),
                Dtype::F32 => probe_deferred(
                    req, &pool.f32, dreg, engine, &cache, &fw, cfg.seed, dtuning, 1e-3,
                ),
            };
            deferred_probes += 1;
            deferred_mismatches += u64::from(mismatch);
        }
    }

    // ---- live phases: queue delay under open-loop Poisson arrivals ----
    // Driven through the first-listed backend only — what is measured
    // here is admission behavior (deadline vs occupancy flushes, queue
    // delay), not the kernel A/B, which happened above.
    let rate = if cfg.arrival_rate.is_finite() { cfg.arrival_rate.max(1.0) } else { 1.0 };
    let live = |window: usize, rate: f64, stream: &[Request]| {
        live_phase(
            stream,
            &pools,
            regs[0],
            &cache,
            &fw,
            clients,
            window,
            cfg.batch_deadline_us,
            rate,
            cfg.seed,
        )
    };
    let admission = live(cfg.batch_window, rate, &mix);
    let sweep_len = (cfg.requests / 4).clamp(48, 192).min(mix.len());
    let sweep_stream = &mix[..sweep_len];
    let mut sweep = Vec::new();
    for window in [1, cfg.batch_window.max(2)] {
        for cell_rate in [(rate / 4.0).max(1.0), rate] {
            sweep.push(live(window, cell_rate, sweep_stream));
        }
    }

    // ---- overload sweep: goodput vs. offered load, bounded backlog ----
    // A deliberately small backlog (a few batches' worth) so saturation
    // turns into measured shedding instead of queue growth, with a
    // per-request deadline a few flush budgets wide.
    let overload_backlog = if cfg.backlog > 0 {
        cfg.backlog.min((clients * cfg.batch_window.max(1)).max(4))
    } else {
        (clients * cfg.batch_window.max(1)).max(4)
    };
    let overload_deadline_us = cfg.batch_deadline_us.max(50) * 8;
    let mut overload = Vec::new();
    for mult in [1.0, 2.0, 4.0, 8.0] {
        overload.push(overload_phase(
            sweep_stream,
            &pools,
            regs[0],
            &cache,
            &fw,
            clients,
            cfg.batch_window,
            cfg.batch_deadline_us,
            overload_backlog,
            overload_deadline_us,
            rate * mult,
            cfg.seed,
        ));
    }

    // ---- assemble the report (serial from here on) ----
    let ms = |ns: u64| ns as f64 / 1e6;
    let serving: Vec<f64> = slots.serving.iter().map(|a| ms(a.load(Ordering::Relaxed))).collect();
    let solo: Vec<f64> = slots.solo.iter().map(|a| ms(a.load(Ordering::Relaxed))).collect();
    let batched: Vec<f64> = slots.batched.iter().map(|a| ms(a.load(Ordering::Relaxed))).collect();
    let out: Vec<u8> = slots.outcome.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let kinds: Vec<u8> = slots.kind.iter().map(|a| a.load(Ordering::Relaxed)).collect();

    let mut batch_of = vec![0usize; mix.len()];
    for (bi, b) in batches.iter().enumerate() {
        for &r in &b.idx {
            batch_of[r] = bi;
        }
    }
    // Outcome and occupancy of execution slot `e` (= request·nlanes + lane).
    let exec_outcome = |e: usize| out[batch_of[e / nlanes] * nlanes + e % nlanes];
    let exec_occ = |e: usize| batches[batch_of[e / nlanes]].idx.len();

    // 0.0, not NaN, for an empty split: the serde_json shim writes NaN as
    // `null`, which would make the emitted document violate its own f64
    // schema. A short all-distinct stream legitimately has zero hits.
    let mean_of = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let split_means = |idx: &[usize]| {
        let cold: Vec<f64> = idx
            .iter()
            .filter(|&&e| exec_outcome(e) == OUTCOME_COMPILED)
            .map(|&e| serving[e])
            .collect();
        let hit: Vec<f64> =
            idx.iter().filter(|&&e| exec_outcome(e) == OUTCOME_HIT).map(|&e| serving[e]).collect();
        (mean_of(&cold), mean_of(&hit))
    };
    // The batched-vs-solo split over coalesced executions of `idx`.
    let batch_split = |idx: &[usize]| {
        let coalesced: Vec<usize> = idx.iter().copied().filter(|&e| exec_occ(e) >= 2).collect();
        let s = mean_of(&coalesced.iter().map(|&e| solo[e]).collect::<Vec<_>>());
        let b = mean_of(&coalesced.iter().map(|&e| batched[e]).collect::<Vec<_>>());
        (s, b, if b > 0.0 { s / b } else { 0.0 }, coalesced.len())
    };

    let all_idx: Vec<usize> = (0..executions).collect();
    let all = Samples::new(serving.clone());
    let (cold_trace_mean_ms, cache_hit_mean_ms) = split_means(&all_idx);

    // Per-backend A/B records, first-listed backend as the ratio anchor.
    // A backend's view aggregates all its lanes (both optimizer levels
    // when `--opt egraph` is on), so lookups are `batches × levels`.
    let mut backends = Vec::with_capacity(regs.len());
    let mut first_mean = 0.0;
    for (ki, reg) in regs.iter().enumerate() {
        let idx: Vec<usize> =
            (0..mix.len()).flat_map(|i| (0..nl).map(move |li| i * nlanes + ki * nl + li)).collect();
        let b_lat: Vec<f64> = idx.iter().map(|&e| serving[e]).collect();
        let hits = (0..nbatches)
            .flat_map(|bi| (0..nl).map(move |li| bi * nlanes + ki * nl + li))
            .filter(|&s| out[s] == OUTCOME_HIT)
            .count();
        let busy_secs: f64 = b_lat.iter().sum::<f64>() / 1e3;
        let mean_ms = mean_of(&b_lat);
        if ki == 0 {
            first_mean = mean_ms;
        }
        let (b_cold, b_hit) = split_means(&idx);
        let (b_solo, b_batched, b_speedup, _) = batch_split(&idx);
        backends.push(BackendRecord {
            backend: reg.name().to_string(),
            requests: mix.len(),
            lookups: nbatches * nl,
            hits,
            misses: nbatches * nl - hits,
            hit_rate: hits as f64 / (nbatches * nl) as f64,
            requests_per_sec: if busy_secs > 0.0 {
                mix.len() as f64 * clients as f64 / busy_secs
            } else {
                0.0
            },
            p50_ms: Samples::new(b_lat.clone()).median(),
            p99_ms: Samples::new(b_lat).quantile(0.99),
            mean_ms,
            cold_trace_mean_ms: b_cold,
            cache_hit_mean_ms: b_hit,
            solo_mean_ms: b_solo,
            batched_mean_ms: b_batched,
            batched_speedup: b_speedup,
            speedup_vs_first: if mean_ms > 0.0 { first_mean / mean_ms } else { 0.0 },
        });
    }

    let fam_flags: Vec<u8> =
        slots.fam_stackable.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let mut families = Vec::new();
    for (fi, family) in Family::ALL.iter().enumerate() {
        let idx: Vec<usize> =
            (0..executions).filter(|&e| mix[e / nlanes].family == *family).collect();
        if idx.is_empty() {
            continue;
        }
        let fam_lat: Vec<f64> = idx.iter().map(|&e| serving[e]).collect();
        let (f_solo, f_batched, f_speedup, _) = batch_split(&idx);
        families.push(FamilyRecord {
            family: family.id().to_string(),
            experiment: family.experiment().to_string(),
            stackable: fam_flags[fi] == 1,
            requests: idx.len(),
            hits: idx.iter().filter(|&&e| exec_outcome(e) == OUTCOME_HIT).count(),
            p50_ms: Samples::new(fam_lat.clone()).median(),
            mean_ms: mean_of(&fam_lat),
            solo_mean_ms: f_solo,
            batched_mean_ms: f_batched,
            batched_speedup: f_speedup,
        });
    }

    // Per-level A/B records and the per-family extracted-cost vs.
    // measured-latency comparison. Slot `e`'s lane is `e % nlanes`, its
    // level index within the lane is `lane % nl`.
    let eg_map = slots.egraph.lock().expect("egraph reports").clone();
    let budget_hits_total = slots.budget_hits.load(Ordering::Relaxed);
    let level_slots =
        |li: usize| -> Vec<usize> { (0..executions).filter(|&e| e % nlanes % nl == li).collect() };
    let mut opt_levels = Vec::with_capacity(nl);
    for (li, level) in levels.iter().enumerate() {
        let lat: Vec<f64> = level_slots(li).iter().map(|&e| serving[e]).collect();
        let is_egraph = *level == OptLevel::Egraph;
        opt_levels.push(OptLevelRecord {
            level: level.id().to_string(),
            executions: lat.len(),
            p50_ms: Samples::new(lat.clone()).median(),
            mean_ms: mean_of(&lat),
            changed_plans: if is_egraph {
                eg_map.values().filter(|r| r.changed).count()
            } else {
                0
            },
            saturation_budget_hits: if is_egraph { budget_hits_total } else { 0 },
        });
    }
    let mut opt_families = Vec::new();
    if nl > 1 {
        for family in Family::ALL.iter() {
            let fam_level_lat = |li: usize| -> Vec<f64> {
                (0..executions)
                    .filter(|&e| mix[e / nlanes].family == *family && e % nlanes % nl == li)
                    .map(|e| serving[e])
                    .collect()
            };
            let p = fam_level_lat(0);
            if p.is_empty() {
                continue;
            }
            let g = fam_level_lat(1);
            // The base-size entry anchors the cost columns; any size of
            // the family is an acceptable stand-in (extraction is
            // structural, so `changed` agrees across sizes).
            let rep = eg_map
                .get(&(*family, cfg.n))
                .or_else(|| eg_map.iter().find(|((f, _), _)| f == family).map(|(_, r)| r));
            let (pm, gm) = (mean_of(&p), mean_of(&g));
            opt_families.push(OptFamilyRecord {
                family: family.id().to_string(),
                changed: rep.is_some_and(|r| r.changed),
                budget_hit: rep.is_some_and(|r| r.budget_hit),
                extracted_cost: rep.map_or(0, |r| r.extracted_cost),
                original_cost: rep.map_or(0, |r| r.original_cost),
                passes_mean_ms: pm,
                egraph_mean_ms: gm,
                egraph_speedup: if gm > 0.0 { pm / gm } else { 0.0 },
            });
        }
    }

    // The admission window's own record.
    let max_occupancy = batches.iter().map(|b| b.idx.len()).max().unwrap_or(0);
    let mut occupancy_hist = vec![0usize; max_occupancy];
    for b in &batches {
        occupancy_hist[b.idx.len() - 1] += 1;
    }
    let (g_solo, g_batched, g_speedup, coalesced_execs) = batch_split(&all_idx);
    let coalesced_busy_batched: f64 =
        all_idx.iter().filter(|&&e| exec_occ(e) >= 2).map(|&e| batched[e]).sum::<f64>() / 1e3;
    let coalesced_busy_solo: f64 =
        all_idx.iter().filter(|&&e| exec_occ(e) >= 2).map(|&e| solo[e]).sum::<f64>() / 1e3;
    let rps = |execs: usize, busy: f64| {
        if busy > 0.0 {
            execs as f64 * clients as f64 / busy
        } else {
            0.0
        }
    };
    let batching = BatchingRecord {
        enabled: cfg.batching_enabled(),
        window: cfg.batch_window,
        batches: nbatches,
        mean_occupancy: mix.len() as f64 / nbatches as f64,
        max_occupancy,
        occupancy_hist,
        stacked_batches: kinds.iter().filter(|&&k| k == BATCH_STACKED).count(),
        fallback_batches: kinds.iter().filter(|&&k| k == BATCH_FALLBACK).count(),
        solo_batches: kinds.iter().filter(|&&k| k == BATCH_SOLO).count(),
        batched_requests: batches.iter().map(|b| b.idx.len()).filter(|&o| o >= 2).sum(),
        batched_mean_ms: g_batched,
        solo_mean_ms: g_solo,
        batched_speedup: g_speedup,
        batched_requests_per_sec: rps(coalesced_execs, coalesced_busy_batched),
        solo_requests_per_sec: rps(coalesced_execs, coalesced_busy_solo),
    };

    // The deferred backend's record: per-family accumulators summed into
    // run totals, plus the fusion A/B means. Families the stream never
    // exercised (or that a deferred lane never served) are omitted.
    let dacc = slots.deferred.lock().expect("deferred accounting");
    let mut dtotal = laab_deferred::RunStats::default();
    for a in dacc.iter() {
        dtotal.merge(&a.stats);
    }
    let mut deferred_families = Vec::new();
    for (fi, family) in Family::ALL.iter().enumerate() {
        let a = &dacc[fi];
        if a.stats.tape_ops == 0 && a.ab_requests == 0 {
            continue;
        }
        let total_ns = a.stats.dispatch_ns + a.stats.compute_ns;
        let fused_mean_ms =
            if a.ab_requests > 0 { a.fused_ns as f64 / a.ab_requests as f64 / 1e6 } else { 0.0 };
        let unfused_mean_ms =
            if a.ab_requests > 0 { a.unfused_ns as f64 / a.ab_requests as f64 / 1e6 } else { 0.0 };
        deferred_families.push(DeferredFamilyRecord {
            family: family.id().to_string(),
            tape_ops: a.stats.tape_ops,
            groups: a.stats.groups,
            fused_ops: a.stats.fused_ops,
            unfused_ops: a.stats.unfused_ops,
            dispatch_ns: a.stats.dispatch_ns,
            compute_ns: a.stats.compute_ns,
            dispatch_share: if total_ns > 0 {
                a.stats.dispatch_ns as f64 / total_ns as f64
            } else {
                0.0
            },
            fused_mean_ms,
            unfused_mean_ms,
            fused_speedup: if fused_mean_ms > 0.0 { unfused_mean_ms / fused_mean_ms } else { 0.0 },
        });
    }
    let deferred = DeferredRecord {
        enabled: deferred_reg.is_some(),
        dispatch_us: cfg.dispatch_us,
        fusion: cfg.fusion,
        tape_capacity: dtuning.capacity,
        tape_ops: dtotal.tape_ops,
        max_tape_len: dtotal.max_tape_len,
        flush_capacity: dtotal.flush_capacity,
        flush_materialize: dtotal.flush_materialize,
        flush_barrier: dtotal.flush_barrier,
        groups: dtotal.groups,
        fused_ops: dtotal.fused_ops,
        unfused_ops: dtotal.unfused_ops,
        dispatch_ns: dtotal.dispatch_ns,
        compute_ns: dtotal.compute_ns,
        probes: deferred_probes,
        mismatches: deferred_mismatches,
        families: deferred_families,
    };
    drop(dacc);

    let stats = cache_stats;
    Ok(ServeReport {
        schema: SERVE_REPORT_SCHEMA.to_string(),
        smoke: cfg.smoke,
        requests: cfg.requests,
        executions,
        clients_requested: cfg.clients,
        clients_resolved: clients,
        base_n: cfg.n,
        seed: cfg.seed,
        dtype: cfg.dtype.map_or("mixed", Dtype::name).to_string(),
        batch_window: cfg.batch_window,
        batch_deadline_us: cfg.batch_deadline_us,
        arrival_rate: rate,
        distinct_signatures: distinct.len(),
        wall_secs,
        requests_per_sec: executions as f64 / wall_secs,
        p50_ms: all.median(),
        p99_ms: all.quantile(0.99),
        cold_trace_mean_ms,
        cache_hit_mean_ms,
        cache_hit_speedup: if cache_hit_mean_ms > 0.0 {
            cold_trace_mean_ms / cache_hit_mean_ms
        } else {
            0.0
        },
        batching,
        admission,
        sweep,
        overload,
        cache: CacheStatsRecord {
            hits: stats.hits,
            misses: stats.misses,
            retraces: stats.retraces,
            evictions: stats.evictions,
            evicted_recompiles: stats.evicted_recompiles,
            mean_recompile_ms: stats.mean_recompile_ms(),
            entries: stats.entries,
            hit_rate: stats.hit_rate(),
        },
        backends,
        families,
        opt: cfg.opt.id().to_string(),
        opt_levels,
        opt_families,
        opt_probes,
        opt_mismatches,
        saturation_budget_hits: budget_hits_total,
        deferred,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        // Small operands, full mixed-signature stream: plumbing, not perf.
        ServeConfig {
            requests: 400,
            n: 12,
            clients: 2,
            seed: 7,
            smoke: true,
            ..ServeConfig::smoke()
        }
    }

    fn run_ok(cfg: &ServeConfig) -> ServeReport {
        run(cfg).expect("valid config serves")
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_ok(&tiny_cfg());
        let back = ServeReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(back, report);
        assert_eq!(report.schema, SERVE_REPORT_SCHEMA);
    }

    #[test]
    fn bad_schema_is_rejected() {
        let mut report = run_ok(&ServeConfig { requests: 24, ..tiny_cfg() });
        report.schema = "laab-serve-bench-v2".into();
        assert!(ServeReport::from_json(&report.to_json()).is_err());
    }

    #[test]
    fn admission_window_coalesces_and_counters_stay_consistent() {
        let report = run_ok(&tiny_cfg());
        let b = &report.batching;
        assert!(b.enabled && b.window == 8);
        assert!(b.mean_occupancy > 1.0, "window 8 must coalesce: {:.2}", b.mean_occupancy);
        assert!(b.max_occupancy >= 2 && b.max_occupancy <= b.window);
        // The histogram partitions the batches, weighted by occupancy it
        // partitions the requests.
        assert_eq!(b.occupancy_hist.iter().sum::<usize>(), b.batches);
        let weighted: usize = b.occupancy_hist.iter().enumerate().map(|(i, c)| (i + 1) * c).sum();
        assert_eq!(weighted, report.requests);
        assert_eq!(b.stacked_batches + b.fallback_batches + b.solo_batches, b.batches);
        assert!(b.stacked_batches > 0, "chain/solve batches must stack");
        assert!(b.fallback_batches > 0, "matrix-family batches must fall back");
        assert!(b.batched_requests >= 2 * (b.stacked_batches + b.fallback_batches));
        // Both legs were measured on coalesced batches.
        assert!(b.solo_mean_ms > 0.0 && b.batched_mean_ms > 0.0 && b.batched_speedup > 0.0);
        assert!(b.batched_requests_per_sec > 0.0 && b.solo_requests_per_sec > 0.0);

        // Cache lookups are batch-granular: one per (batch, backend).
        assert_eq!(report.executions, report.requests);
        assert_eq!(report.cache.hits + report.cache.misses, b.batches as u64);
        assert!(report.cache.retraces >= 1, "churned stream must retrace");
        assert_eq!(report.backends.len(), 1);
        let be = &report.backends[0];
        assert_eq!(be.lookups, b.batches);
        assert_eq!(be.hits + be.misses, be.lookups);
        assert!(be.hit_rate > 0.5, "repeats within the key set still hit: {}", be.hit_rate);
        assert_eq!(be.misses, report.distinct_signatures, "one compile per signature");
        assert!(be.solo_mean_ms > 0.0 && be.batched_mean_ms > 0.0);

        // Families: the GEMV-shaped ones stack, the matrix ones fall back.
        assert_eq!(report.families.len(), Family::ALL.len());
        let fam_requests: usize = report.families.iter().map(|f| f.requests).sum();
        assert_eq!(fam_requests, report.executions);
        for f in &report.families {
            let want_stack = f.family == "chain" || f.family == "solve_residual";
            assert_eq!(f.stackable, want_stack, "{}", f.family);
            assert!(f.hits <= f.requests);
        }
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.cold_trace_mean_ms.is_finite() && report.cache_hit_mean_ms.is_finite());
        assert_eq!(report.batch_window, 8);
    }

    #[test]
    fn disabling_batching_restores_per_request_serving() {
        let report = run_ok(&ServeConfig { batch_window: 0, ..tiny_cfg() });
        let b = &report.batching;
        assert!(!b.enabled);
        assert_eq!(b.batches, report.requests, "every request is its own batch");
        assert_eq!(b.mean_occupancy, 1.0);
        assert_eq!(b.max_occupancy, 1);
        assert_eq!((b.stacked_batches, b.fallback_batches), (0, 0));
        assert_eq!(b.solo_batches, b.batches);
        assert_eq!(b.batched_requests, 0);
        assert_eq!((b.batched_mean_ms, b.batched_speedup), (0.0, 0.0));
        // Per-request lookups: the pre-v3 semantics, including the high
        // hit rate over the repeated-signature stream.
        let be = &report.backends[0];
        assert_eq!(be.lookups, report.requests);
        assert!(be.hit_rate > 0.9, "hit rate {:.3} not > 0.9", be.hit_rate);
        assert_eq!((be.batched_mean_ms, be.batched_speedup), (0.0, 0.0));
        assert_eq!(report.cache.hits + report.cache.misses, report.requests as u64);
    }

    #[test]
    fn multi_backend_run_interleaves_and_keeps_entries_independent() {
        let cfg = ServeConfig {
            backends: vec!["engine".into(), "seed".into(), "reference".into()],
            ..tiny_cfg()
        };
        let report = run_ok(&cfg);
        assert_eq!(report.executions, report.requests * 3);
        assert_eq!(report.backends.len(), 3);

        // Identical traffic per backend: every backend saw every batch,
        // and — because signatures embed the BackendId — each compiled
        // its own plans. No cross-backend hits is structural: per-backend
        // misses equal the per-backend distinct-signature count, and the
        // resident entries are the per-backend sets side by side.
        let per_backend_distinct = report.distinct_signatures / 3;
        for b in &report.backends {
            assert_eq!(b.requests, report.requests, "{}", b.backend);
            assert_eq!(b.lookups, report.batching.batches, "{}", b.backend);
            assert_eq!(b.hits + b.misses, b.lookups, "{}", b.backend);
            assert_eq!(b.misses, per_backend_distinct, "{} compiled its own plans", b.backend);
            assert!(b.p99_ms >= b.p50_ms, "{}", b.backend);
            assert!(b.requests_per_sec > 0.0 && b.speedup_vs_first > 0.0, "{}", b.backend);
            assert!(b.batched_speedup > 0.0, "{} measured both legs", b.backend);
        }
        assert_eq!(report.cache.evictions, 0, "capacity scales with backend count");
        assert_eq!(report.cache.evicted_recompiles, 0);
        assert_eq!(report.cache.mean_recompile_ms, 0.0);
        assert_eq!(report.cache.entries, report.distinct_signatures);
        assert_eq!(report.backends[0].speedup_vs_first, 1.0, "baseline anchors at 1.0");

        // Hit counts are a deterministic function of the stream, so every
        // backend's counters are identical — only latencies differ.
        assert!(report.backends.iter().all(|b| b.hits == report.backends[0].hits));

        // The JSON document round-trips with the records in order.
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        let names: Vec<&str> = back.backends.iter().map(|b| b.backend.as_str()).collect();
        assert_eq!(names, ["engine", "seed", "reference"]);
    }

    #[test]
    fn unknown_backend_is_a_named_error() {
        let cfg = ServeConfig { backends: vec!["cuda".into()], ..tiny_cfg() };
        let err = run(&cfg).expect_err("unknown backend must not serve");
        match &err {
            ServeError::UnknownBackend { requested, available } => {
                assert_eq!(requested, "cuda");
                assert!(available.iter().any(|n| n == "engine"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("cuda") && text.contains("engine"), "{text}");
    }

    #[test]
    fn duplicate_and_empty_backend_lists_are_errors() {
        let cfg = ServeConfig { backends: vec!["engine".into(), "engine".into()], ..tiny_cfg() };
        assert_eq!(run(&cfg), Err(ServeError::DuplicateBackend("engine".into())));
        let cfg = ServeConfig { backends: vec![], ..tiny_cfg() };
        assert_eq!(run(&cfg), Err(ServeError::NoBackends));
    }

    #[test]
    fn unsupported_dtype_combination_is_rejected_before_dispatch() {
        static F64_ONLY: laab_backend::Registration = laab_backend::Registration::new(
            "serve-test-f64-only",
            "f64-only backend for the dtype-validation test",
            None,
            Some(&laab_backend::EngineBackend),
        );
        // Tolerate re-registration across test orders within the binary.
        let _ = laab_backend::registry::register(&F64_ONLY);

        // A mixed stream contains f32 requests → named error, no panic.
        let cfg = ServeConfig { backends: vec!["serve-test-f64-only".into()], ..tiny_cfg() };
        let err = run(&cfg).expect_err("mixed stream hits the missing f32 entry point");
        assert_eq!(
            err,
            ServeError::UnsupportedDtype {
                backend: "serve-test-f64-only".into(),
                dtype: Dtype::F32
            }
        );
        assert!(err.to_string().contains("--dtype"), "{err}");

        // Restricting the stream to f64 makes the combination valid.
        let cfg = ServeConfig { dtype: Some(Dtype::F64), requests: 48, ..cfg };
        let report = run_ok(&cfg);
        assert_eq!(report.dtype, "f64");
        assert_eq!(report.backends[0].backend, "serve-test-f64-only");
    }

    #[test]
    fn schema_is_registered_in_laab_core() {
        // The registry lives below this crate in the dependency graph and
        // mirrors the tag; this is the drift guard the registry promises.
        let spec = laab_core::bench_registry::find("serve").expect("serve is registered");
        assert_eq!(spec.schema, SERVE_REPORT_SCHEMA);
        assert_eq!(spec.artifact, "BENCH_serve.json");
        assert_eq!(laab_core::bench_registry::SERVE_SCHEMA, SERVE_REPORT_SCHEMA);
    }

    #[test]
    fn single_client_run_works() {
        let report = run_ok(&ServeConfig { requests: 32, clients: 1, ..tiny_cfg() });
        assert_eq!(report.clients_resolved, 1);
        assert_eq!(report.clients_requested, 1);
        assert_eq!(report.requests, 32);
    }

    #[test]
    fn builder_validates_at_build_time() {
        // The happy path reproduces the defaults.
        let cfg = ServeConfig::builder().build().expect("defaults build");
        assert_eq!(cfg.requests, ServeConfig::default().requests);
        assert_eq!(cfg.batch_deadline_us, 250);

        // Explicit zero clients is a named error, not a silent clamp —
        // and auto (the default) still resolves with the documented cap.
        assert_eq!(ServeConfig::builder().clients(0).build(), Err(ServeError::ZeroClients));
        let auto = ServeConfig::builder().clients_auto().build().expect("auto builds");
        assert_eq!(auto.clients, 0);
        assert!(auto.resolved_clients() >= 1 && auto.resolved_clients() <= 8);
        // Explicit counts pass through verbatim, beyond the auto cap too.
        let cfg = ServeConfig::builder().clients(12).build().expect("explicit builds");
        assert_eq!((cfg.clients, cfg.resolved_clients()), (12, 12));

        assert_eq!(ServeConfig::builder().shards(0).build(), Err(ServeError::ZeroShards));
        assert_eq!(
            ServeConfig::builder().batch_window(8).batch_deadline_us(0).build(),
            Err(ServeError::MissingDeadline { window: 8 })
        );
        // Window 1 never holds a partial batch: no deadline required.
        assert!(ServeConfig::builder().batch_window(1).batch_deadline_us(0).build().is_ok());

        // Backend names resolve at build time, before any dispatch.
        let err = ServeConfig::builder().backends(["cuda"]).build().expect_err("unknown");
        assert!(
            matches!(err, ServeError::UnknownBackend { ref requested, .. } if requested == "cuda")
        );
        assert!(ServeConfig::builder().backends(Vec::<String>::new()).build().is_err());

        // A built config runs end to end.
        let cfg = ServeConfig::smoke_builder()
            .requests(48)
            .n(12)
            .clients(2)
            .seed(7)
            .backends(["seed"])
            .batch_window(4)
            .batch_deadline_us(200)
            .arrival_rate(4000.0)
            .build()
            .expect("smoke builder config is valid");
        let report = run_ok(&cfg);
        assert_eq!(report.batch_window, 4);
        assert_eq!(report.batch_deadline_us, 200);
        assert_eq!(report.backends[0].backend, "seed");
    }

    #[test]
    fn live_admission_reports_deadline_flushes_and_queue_delay() {
        let report = run_ok(&tiny_cfg());
        let a = &report.admission;
        assert_eq!(a.window, 8);
        assert_eq!(a.deadline_us, 250);
        assert_eq!(a.requests, report.requests);
        assert_eq!(a.occupancy_flushes + a.deadline_flushes + a.drain_flushes, a.batches as u64);
        assert_eq!((a.pressure_flushes, a.shed), (0, 0), "live phases are unbounded");
        assert!(a.batches >= 1 && a.mean_occupancy >= 1.0);
        // At 2000 req/s spread over ~a dozen signature keys, per-key
        // inter-arrival dwarfs the 250 µs budget: the deadline path must
        // fire — this is timing-robust, unlike latency magnitudes.
        assert!(a.deadline_flushes > 0, "deadline flushes expected: {a:?}");
        assert!(a.queue_delay_p99_us >= a.queue_delay_p50_us);
        assert!(a.queue_delay_p50_us > 0.0, "queueing delay is always positive");

        // The sweep covers windows {1, window} × rates {r/4, r}.
        assert_eq!(report.sweep.len(), 4);
        assert!(report.sweep.iter().all(|c| c.requests > 0 && c.batches > 0));
        let low_coalescing: Vec<&AdmissionRecord> = report
            .sweep
            .iter()
            .filter(|c| c.window >= 2 && c.arrival_rate < report.arrival_rate)
            .collect();
        assert!(!low_coalescing.is_empty());
        for c in low_coalescing {
            assert!(c.deadline_flushes > 0, "low-rate coalescing cell must deadline-flush: {c:?}");
        }
        // Window-1 cells never coalesce: every flush is an occupancy
        // flush of a singleton batch.
        for c in report.sweep.iter().filter(|c| c.window == 1) {
            assert_eq!(c.deadline_flushes, 0, "{c:?}");
            assert_eq!(c.mean_occupancy, 1.0);
            assert_eq!(c.occupancy_flushes, c.requests as u64);
        }
    }

    #[test]
    fn overload_sweep_partitions_every_request_exactly() {
        let report = run_ok(&tiny_cfg());
        assert_eq!(report.overload.len(), 4);
        for o in &report.overload {
            // Every offered request lands in exactly one bucket.
            assert_eq!(o.completed + o.shed + o.expired, o.requests as u64, "{o:?}");
            assert!(o.goodput_rps <= o.offered_rps, "{o:?}");
            assert!(o.backlog > 0 && o.deadline_us > 0, "{o:?}");
            assert!(o.completed > 0, "some requests complete even past saturation: {o:?}");
        }
        // The points probe strictly increasing offered rates.
        assert!(report.overload.windows(2).all(|w| w[0].arrival_rate < w[1].arrival_rate));
        assert_eq!(report.overload[0].arrival_rate, report.arrival_rate);
        assert_eq!(report.overload[3].arrival_rate, report.arrival_rate * 8.0);
    }

    #[test]
    fn transport_errors_chain_their_sources() {
        let io = Arc::new(std::io::Error::new(std::io::ErrorKind::AddrInUse, "taken"));
        let err = ServeError::Bind { addr: "tcp:127.0.0.1:1".into(), source: io };
        assert!(err.to_string().contains("failed to bind"), "{err}");
        let src = std::error::Error::source(&err).expect("bind error chains its io source");
        assert!(src.to_string().contains("taken"), "{src}");
        // Wrapped io errors compare by kind, keeping assert_eq usable.
        let io2 = Arc::new(std::io::Error::new(std::io::ErrorKind::AddrInUse, "different text"));
        assert_eq!(err, ServeError::Bind { addr: "tcp:127.0.0.1:1".into(), source: io2 });

        let frame = ServeError::Frame(FrameError::UnknownVersion(9));
        let src = std::error::Error::source(&frame).expect("frame error chains");
        assert!(src.to_string().contains("version"), "{src}");
        assert_ne!(frame, ServeError::Frame(FrameError::UnknownVersion(8)));
    }

    #[test]
    fn zero_hit_stream_still_emits_valid_json() {
        // 5 requests over a churning mixed stream are (almost certainly)
        // all distinct signatures → zero hits, singleton batches. The
        // report must stay within its own f64 schema (no NaN → null) and
        // round-trip.
        let report = run_ok(&ServeConfig { requests: 5, churn_every: 2, ..tiny_cfg() });
        assert!(report.cache_hit_mean_ms.is_finite());
        assert!(report.cache_hit_speedup.is_finite());
        assert!(report.batching.batched_speedup.is_finite());
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn passes_only_run_reports_single_level() {
        // The default config must stay the pre-v6 serving loop bit for
        // bit: one lane per backend, no probes, no egraph records.
        let report = run_ok(&tiny_cfg());
        assert_eq!(report.opt, "passes");
        assert_eq!(report.opt_levels.len(), 1);
        assert_eq!(report.opt_levels[0].level, "passes");
        assert_eq!(report.opt_levels[0].executions, report.executions);
        assert_eq!(report.opt_levels[0].changed_plans, 0);
        assert_eq!(report.opt_levels[0].saturation_budget_hits, 0);
        assert!(report.opt_families.is_empty());
        assert_eq!((report.opt_probes, report.opt_mismatches), (0, 0));
        assert_eq!(report.saturation_budget_hits, 0);
    }

    #[test]
    fn opt_ab_interleaves_levels_and_discovers_rewrites() {
        // n = 24 puts the chain family past the cost model's crossover
        // (n³ SYRK > 2 penalized GEMVs above n ≈ 20), so reassociation is
        // a modeled win; below it the model correctly keeps the input
        // form (SYRK + one GEMV beats two memory-bound GEMVs).
        let cfg = ServeConfig { opt: OptLevel::Egraph, n: 24, ..tiny_cfg() };
        let report = run_ok(&cfg);
        assert_eq!(report.opt, "egraph");
        // Two lanes: every request executes once per level.
        assert_eq!(report.executions, report.requests * 2);
        assert_eq!(report.opt_levels.len(), 2);
        assert_eq!(report.opt_levels[0].level, "passes");
        assert_eq!(report.opt_levels[1].level, "egraph");
        assert_eq!(report.opt_levels[0].executions, report.requests);
        assert_eq!(report.opt_levels[1].executions, report.requests);
        assert_eq!(report.opt_levels[0].changed_plans, 0);

        // The acceptance claim: the e-graph discovers rewrites the pass
        // pipeline misses on the E1–E5 stream. Chain is the guaranteed
        // one — (HᵀH)x extracts to Hᵀ(Hx) under the GEMV-regime model.
        assert!(report.opt_levels[1].changed_plans >= 1);
        let chain =
            report.opt_families.iter().find(|f| f.family == "chain").expect("chain family served");
        assert!(chain.changed, "reassociation must be discovered: {chain:?}");
        assert!(!chain.budget_hit);
        assert!(
            chain.extracted_cost < chain.original_cost,
            "modeled win: {} < {}",
            chain.extracted_cost,
            chain.original_cost
        );
        assert!(chain.passes_mean_ms > 0.0 && chain.egraph_mean_ms > 0.0);
        // Factoring (AB + AC → A(B+C)) and slice pushdown are size-
        // independent wins; they must be discovered too.
        let dist = report.opt_families.iter().find(|f| f.family == "distributive").unwrap();
        assert!(dist.changed && dist.extracted_cost < dist.original_cost, "{dist:?}");
        let slice = report.opt_families.iter().find(|f| f.family == "slice").unwrap();
        assert!(slice.changed && slice.extracted_cost < slice.original_cost, "{slice:?}");
        // Unchanged families report equal costs (ties keep the input).
        for f in report.opt_families.iter().filter(|f| !f.changed && !f.budget_hit) {
            assert_eq!(f.extracted_cost, f.original_cost, "{}", f.family);
        }

        // The soundness gate: every probe agreed within tolerance.
        assert!(report.opt_probes > 0);
        assert_eq!(report.opt_mismatches, 0, "cross-level mismatch");
        assert_eq!(report.saturation_budget_hits, 0, "serving exprs are tiny");

        // Per-level cache entries never alias: one compile per distinct
        // (signature incl. level), and the A/B multiplicity is not
        // misreported as signature drift beyond the churned stream's own
        // retraces (the (callsite, backend, opt) key fix).
        assert_eq!(report.cache.misses, report.distinct_signatures as u64);
        let be = &report.backends[0];
        assert_eq!(be.lookups, report.batching.batches * 2);
        assert_eq!(be.hits + be.misses, be.lookups);

        // v6 round-trips with the new records intact.
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(back, report);
        assert_eq!(back.opt_families.len(), report.opt_families.len());
    }

    #[test]
    fn builder_sets_opt_level() {
        let cfg = ServeConfig::smoke_builder().opt(OptLevel::Egraph).build().expect("builds");
        assert_eq!(cfg.opt, OptLevel::Egraph);
        assert_eq!(cfg.opt_levels(), vec![OptLevel::Passes, OptLevel::Egraph]);
        assert_eq!(ServeConfig::default().opt_levels(), vec![OptLevel::Passes]);
    }

    #[test]
    fn deferred_ab_fuses_and_accounts_dispatch() {
        // One client (no cross-thread spin contention polluting the
        // wall-clock A/B) and a launch cost high enough that the modeled
        // dispatch delta dominates scheduler noise — the regime the
        // deferred model exists to expose.
        let cfg = ServeConfig {
            backends: vec!["engine".into(), "deferred".into()],
            clients: 1,
            dispatch_us: 200,
            ..tiny_cfg()
        };
        let report = run_ok(&cfg);
        assert_eq!(report.executions, report.requests * 2);
        assert_eq!(report.backends.len(), 2);
        let d = &report.deferred;
        assert!(d.enabled);
        assert_eq!(d.dispatch_us, 200);
        assert!(d.fusion);

        // Every serving leg ran on the tape, so the op counters partition:
        // each recorded op either launched inside a fused group or alone.
        assert!(d.tape_ops > 0, "serving legs must record ops");
        assert_eq!(d.fused_ops + d.unfused_ops, d.tape_ops);
        assert!(d.max_tape_len >= 1 && d.max_tape_len <= d.tape_capacity as u64);
        assert!(d.flush_materialize > 0, "every plan materializes outputs");
        assert!(d.groups > 0);
        assert!(d.fused_ops >= 2, "GEMM+epilogue chains must fuse");

        // The dispatch-cost model is deterministic: one charge per
        // launched group, exactly dispatch_us each. This is the identity
        // CI asserts on the smoke artifact.
        assert_eq!(d.dispatch_ns, d.groups * d.dispatch_us * 1_000);
        assert!(d.compute_ns > 0);

        // Equivalence gate: every probed (family, n, dtype) agreed with
        // the engine within tolerance.
        assert!(d.probes > 0);
        assert_eq!(d.mismatches, 0, "tape diverged from engine");

        // Per-family splits: solve_residual (Hᵀ(y−Hx): GEMV, AXPY-shaped
        // sub, GEMV) and chain carry fusable epilogues; every family that
        // served reports a consistent dispatch share and a measured
        // fusion-on/off A/B.
        assert_eq!(d.families.len(), Family::ALL.len());
        let fam_ops: u64 = d.families.iter().map(|f| f.tape_ops).sum();
        assert_eq!(fam_ops, d.tape_ops);
        for f in &d.families {
            assert_eq!(f.fused_ops + f.unfused_ops, f.tape_ops, "{}", f.family);
            assert!(f.dispatch_share >= 0.0 && f.dispatch_share <= 1.0, "{}", f.family);
            assert!(f.fused_mean_ms > 0.0 && f.unfused_mean_ms > 0.0, "{}", f.family);
            assert!(f.fused_speedup > 0.0, "{}", f.family);
        }
        let solve = d.families.iter().find(|f| f.family == "solve_residual").unwrap();
        assert!(solve.fused_ops >= 2, "residual chain must fuse: {solve:?}");
        // The acceptance A/B: coalescing a stacked window into one
        // launch must beat per-RHS launches on the chain family. The
        // delta is the modeled dispatch spin ((occupancy − 1) ×
        // dispatch_us per window), not machine speed, so it holds on
        // noisy runners too.
        let chain = d.families.iter().find(|f| f.family == "chain").unwrap();
        assert!(chain.fused_speedup > 1.0, "fusion must win on chain windows: {chain:?}");

        // v7 round-trips with the deferred record intact.
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(back, report);
        assert_eq!(back.deferred, report.deferred);
    }

    #[test]
    fn deferred_record_stays_inert_without_the_lane() {
        let report = run_ok(&ServeConfig { requests: 24, ..tiny_cfg() });
        let d = &report.deferred;
        assert!(!d.enabled);
        assert_eq!(d.tape_ops, 0);
        assert_eq!((d.probes, d.mismatches), (0, 0));
        assert!(d.families.is_empty());
    }

    #[test]
    fn builder_sets_deferred_tuning() {
        let cfg =
            ServeConfig::smoke_builder().dispatch_us(11).fusion(false).build().expect("builds");
        assert_eq!(cfg.dispatch_us, 11);
        assert!(!cfg.fusion);
        let t = cfg.deferred_tuning();
        assert_eq!(t.dispatch_ns, 11_000);
        assert!(!t.fuse);
        let d = ServeConfig::default();
        assert_eq!(d.dispatch_us, 5);
        assert!(d.fusion);
    }

    #[test]
    fn strict_timing_batching_and_hit_speedups() {
        // Timing-sensitive: asserted only under LAAB_STRICT_TIMING=1
        // (shared runners are too noisy). A cache hit skips trace +
        // optimize + schedule, so hit batches serve faster than cold
        // ones; and the GEMV-shaped (RHS-stackable) families must show a
        // strict batched-over-solo throughput step at window 8 — the
        // Level-2 → Level-3 regime conversion this subsystem exists for.
        if std::env::var("LAAB_STRICT_TIMING").as_deref() != Ok("1") {
            return;
        }
        let report = run_ok(&ServeConfig::smoke());
        assert!(
            report.cache_hit_speedup > 1.0,
            "cache-hit speedup {:.2}x not > 1x (cold {:.3}ms, hit {:.3}ms)",
            report.cache_hit_speedup,
            report.cold_trace_mean_ms,
            report.cache_hit_mean_ms
        );
        for f in &report.families {
            if f.stackable {
                assert!(
                    f.batched_speedup > 1.0,
                    "{}: batched {:.3}ms not faster than solo {:.3}ms",
                    f.family,
                    f.batched_mean_ms,
                    f.solo_mean_ms
                );
            }
        }
    }
}
