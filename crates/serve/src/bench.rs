//! The multi-client, multi-backend serving loop and its report.
//!
//! Clients are tasks on the `laab-kernels` persistent worker pool
//! ([`parallel_for`]): each drains requests from the shared queue and
//! drives every request through **each selected backend in turn** —
//! computing the per-backend [`Signature`](crate::Signature), resolving a
//! [`Plan`] through the [`PlanCache`] (compiling on a miss — the cold
//! trace), executing it against the family's operand pool, and recording
//! the end-to-end latency per `(request, backend)`.
//!
//! Backends are **interleaved at request granularity**, not run
//! back-to-back: on a noisy 1-CPU box, transient machine load then hits
//! every backend's samples equally and the per-backend *ratios* stay
//! stable even when absolute latencies jitter (the same protocol the
//! GEMM bench uses for its seed-ratio anchor). The harness reports
//! per-backend requests/s, p50/p99, hit rates, and the speedup ratio
//! against the first-listed backend, plus the aggregate view, as a
//! `BENCH_serve.json` document.
//!
//! Like every timing in the suite, numbers are *recorded* unconditionally
//! and *asserted* only under `LAAB_STRICT_TIMING=1`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use laab_backend::{registry, Dtype, Registration};
use laab_expr::eval::Env;
use laab_framework::Framework;
use laab_kernels::parallel_for;
use laab_stats::Samples;

use crate::cache::{Lookup, PlanCache};
use crate::plan::Plan;
use crate::workload::{synthetic_mix, Family};

/// Schema tag of the `BENCH_serve.json` report, bumped on breaking
/// changes. `v2`: multi-backend A/B — adds `executions`, `dtype`, and the
/// per-backend `backends[]` records; top-level latency/cache aggregates
/// now span all executions.
pub const SERVE_REPORT_SCHEMA: &str = "laab-serve-bench-v2";

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Synthetic requests to drain (each is driven through every
    /// selected backend).
    pub requests: usize,
    /// Serving clients (pool tasks); `0` means detected hardware
    /// parallelism (capped at 8 — beyond that the 1-socket kernels are
    /// the bottleneck, not the serving layer).
    pub clients: usize,
    /// Base operand size of the request families.
    pub n: usize,
    /// Seed for the request stream and the operand pools.
    pub seed: u64,
    /// `true` for the CI smoke protocol (recorded in the report).
    pub smoke: bool,
    /// Plan-cache capacity **per backend**: the shared cache is bounded
    /// to `cache_capacity × backends`, so total capacity scales with the
    /// A/B width. The cache itself stays hash-sharded (not partitioned
    /// per backend), so isolation is proportional sizing, not a hard
    /// guarantee — size generously relative to the distinct-signature
    /// count when eviction-free per-backend counters matter.
    pub cache_capacity: usize,
    /// Plan-cache shard count.
    pub shards: usize,
    /// Every `churn_every`-th request changes signature (0 disables);
    /// see [`synthetic_mix`].
    pub churn_every: usize,
    /// Registry names of the backends to drive, first = the ratio
    /// baseline. One entry is a plain serving run; several is an A/B
    /// under identical interleaved traffic.
    pub backends: Vec<String>,
    /// Pin every request to one precision (`None` = mixed f32/f64).
    pub dtype: Option<Dtype>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            requests: 2048,
            clients: 0,
            n: 192,
            seed: 0x1AAB,
            smoke: false,
            cache_capacity: 64,
            shards: 8,
            churn_every: 16,
            backends: vec!["engine".to_string()],
            dtype: None,
        }
    }
}

impl ServeConfig {
    /// The CI smoke protocol: tiny operands, a short stream, the same
    /// mixed-signature shape as the full run.
    pub fn smoke() -> Self {
        Self { requests: 320, n: 48, smoke: true, ..Self::default() }
    }

    /// The resolved client count.
    pub fn resolved_clients(&self) -> usize {
        if self.clients > 0 {
            self.clients
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
        }
    }
}

/// Why a serving run was refused before any request was dispatched.
///
/// These are the CLI-surface errors: `laab serve` turns them into an
/// `error:` line and a usage exit code instead of letting an invalid
/// backend/dtype combination panic deep inside plan dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `--backends` named a backend the registry does not know.
    UnknownBackend {
        /// The name as requested.
        requested: String,
        /// Every name the registry currently resolves.
        available: Vec<String>,
    },
    /// The same backend was listed more than once.
    DuplicateBackend(String),
    /// A selected backend has no entry point for a dtype present in the
    /// request stream.
    UnsupportedDtype {
        /// The offending backend.
        backend: String,
        /// The dtype it cannot execute.
        dtype: Dtype,
    },
    /// The backend list was empty.
    NoBackends,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownBackend { requested, available } => {
                write!(f, "unknown backend `{requested}` (available: {})", available.join(", "))
            }
            ServeError::DuplicateBackend(name) => {
                write!(f, "backend `{name}` is listed more than once in --backends")
            }
            ServeError::UnsupportedDtype { backend, dtype } => write!(
                f,
                "backend `{backend}` does not support dtype {dtype} \
                 (restrict the stream with --dtype or drop the backend)"
            ),
            ServeError::NoBackends => write!(f, "--backends must name at least one backend"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Resolve the configured backend names against the registry, rejecting
/// unknowns and duplicates with a CLI-grade error.
fn resolve_backends(names: &[String]) -> Result<Vec<&'static Registration>, ServeError> {
    if names.is_empty() {
        return Err(ServeError::NoBackends);
    }
    let mut regs = Vec::with_capacity(names.len());
    let mut seen = HashSet::new();
    for name in names {
        if !seen.insert(name.as_str()) {
            return Err(ServeError::DuplicateBackend(name.clone()));
        }
        let reg = registry::find(name).ok_or_else(|| ServeError::UnknownBackend {
            requested: name.clone(),
            available: registry::names().iter().map(|n| n.to_string()).collect(),
        })?;
        regs.push(reg);
    }
    Ok(regs)
}

/// Cache counters as they appear in the JSON report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsRecord {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a plan.
    pub misses: u64,
    /// Misses whose `(callsite, backend)` was already compiled under a
    /// different signature (the `tf.function` retrace event).
    pub retraces: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
    /// Plans resident at the end of the run.
    pub entries: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// One backend's view of the interleaved run — the A/B row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendRecord {
    /// Registry name ([`laab_backend::BackendId`]).
    pub backend: String,
    /// Logical requests driven through this backend (= the stream
    /// length; every backend sees identical traffic).
    pub requests: usize,
    /// Executions served from this backend's cache entries.
    pub hits: usize,
    /// Executions that compiled a plan for this backend.
    pub misses: usize,
    /// `hits / requests` — per-backend, since every backend compiles its
    /// own plans (no cross-backend hits by construction).
    pub hit_rate: f64,
    /// Estimated sustained throughput had this backend served the stream
    /// alone at this client count: `requests / (busy_secs / clients)`.
    /// (Backends share one interleaved run, so per-backend wall time is
    /// not directly observable.)
    pub requests_per_sec: f64,
    /// Median end-to-end latency through this backend, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency through this backend, milliseconds.
    pub p99_ms: f64,
    /// Mean latency through this backend, milliseconds.
    pub mean_ms: f64,
    /// Mean latency of this backend's compiling (cold-trace) executions.
    pub cold_trace_mean_ms: f64,
    /// Mean latency of this backend's cache-hit executions (`0.0` when
    /// the stream produced no hits).
    pub cache_hit_mean_ms: f64,
    /// First-listed backend's mean latency over this backend's mean —
    /// `> 1` means this backend is faster than the baseline, `1.0` for
    /// the baseline itself. This is the paper-style cross-strategy ratio
    /// the A/B exists to measure.
    pub speedup_vs_first: f64,
}

/// Per-family latency aggregate (across all backends).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyRecord {
    /// Family identifier ([`Family::id`]).
    pub family: String,
    /// The paper experiment the family is drawn from.
    pub experiment: String,
    /// Executions of this family (stream occurrences × backends).
    pub requests: usize,
    /// How many were served from the plan cache.
    pub hits: usize,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// Mean end-to-end latency, milliseconds.
    pub mean_ms: f64,
}

/// The full machine-readable report (`BENCH_serve.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Format tag ([`SERVE_REPORT_SCHEMA`]).
    pub schema: String,
    /// Whether the smoke protocol was used.
    pub smoke: bool,
    /// Logical requests drained.
    pub requests: usize,
    /// Plan executions: `requests × backends` (each request is driven
    /// through every selected backend, interleaved).
    pub executions: usize,
    /// Serving clients.
    pub clients: usize,
    /// Base operand size.
    pub base_n: usize,
    /// Stream/operand seed.
    pub seed: u64,
    /// The dtype filter: `"mixed"`, `"f32"`, or `"f64"`.
    pub dtype: String,
    /// Distinct signatures across the run (per-backend signatures — the
    /// compile workload; `backends × ` the stream's structural variety).
    pub distinct_signatures: usize,
    /// Wall-clock seconds for the whole drain.
    pub wall_secs: f64,
    /// Sustained execution throughput over the drain
    /// (`executions / wall_secs`).
    pub requests_per_sec: f64,
    /// Median end-to-end execution latency, milliseconds (all backends).
    pub p50_ms: f64,
    /// 99th-percentile end-to-end execution latency, milliseconds (all
    /// backends).
    pub p99_ms: f64,
    /// Mean latency of executions that compiled (trace + optimize +
    /// schedule + execute), milliseconds.
    pub cold_trace_mean_ms: f64,
    /// Mean latency of executions served from the plan cache (execute
    /// only), milliseconds. `0.0` when the stream produced no hits (every
    /// signature distinct).
    pub cache_hit_mean_ms: f64,
    /// `cold_trace_mean_ms / cache_hit_mean_ms` — the amortization a
    /// cache hit buys (> 1 when caching pays; `0.0` when the stream
    /// produced no hits).
    pub cache_hit_speedup: f64,
    /// Shared plan-cache counters (all backends; per-backend entries are
    /// independent by signature construction).
    pub cache: CacheStatsRecord,
    /// Per-backend A/B records, in `--backends` order (first = ratio
    /// baseline).
    pub backends: Vec<BackendRecord>,
    /// Per-family aggregates, in experiment order.
    pub families: Vec<FamilyRecord>,
}

impl ServeReport {
    /// Serialize as pretty-printed JSON (the on-disk `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ServeReport serializes infallibly")
    }

    /// Parse a report back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let report: ServeReport = serde_json::from_str(text)?;
        if report.schema != SERVE_REPORT_SCHEMA {
            return Err(serde_json::Error(format!(
                "unsupported report schema `{}` (expected `{SERVE_REPORT_SCHEMA}`)",
                report.schema
            )));
        }
        Ok(report)
    }

    /// One-row-per-backend A/B overview for terminal output.
    pub fn backend_table(&self) -> laab_stats::Table {
        let mut t = laab_stats::Table::new(
            format!(
                "backend A/B — {} requests × {} backend(s), interleaved",
                self.requests,
                self.backends.len()
            ),
            &["backend", "req/s", "p50 [ms]", "p99 [ms]", "hit rate", "vs first"],
        );
        for b in &self.backends {
            t.push_row(vec![
                b.backend.clone(),
                format!("{:.0}", b.requests_per_sec),
                format!("{:.3}", b.p50_ms),
                format!("{:.3}", b.p99_ms),
                format!("{:.3}", b.hit_rate),
                format!("{:.2}x", b.speedup_vs_first),
            ]);
        }
        t
    }

    /// One-row-per-family overview for terminal output.
    pub fn summary_table(&self) -> laab_stats::Table {
        let mut t = laab_stats::Table::new(
            format!(
                "laab serve — {} requests × {} backend(s), {} clients, {:.0} exec/s, hit rate {:.3}",
                self.requests,
                self.backends.len(),
                self.clients,
                self.requests_per_sec,
                self.cache.hit_rate
            ),
            &["family", "experiment", "requests", "hits", "p50 [ms]", "mean [ms]"],
        );
        for f in &self.families {
            t.push_row(vec![
                f.family.clone(),
                f.experiment.clone(),
                f.requests.to_string(),
                f.hits.to_string(),
                format!("{:.3}", f.p50_ms),
                format!("{:.3}", f.mean_ms),
            ]);
        }
        t
    }
}

/// Per-dtype operand bindings for one `(family, n)` pool entry.
struct EnvPair {
    f64: Env<f64>,
    f32: Env<f32>,
}

/// Lookup-outcome codes stored in the per-execution slot array.
const OUTCOME_HIT: u8 = 1;
const OUTCOME_COMPILED: u8 = 2;

/// Drain a synthetic request stream through the plan cache, driving each
/// request through every configured backend interleaved, and collect the
/// report.
///
/// Operand pools are generated up front (a client serving traffic already
/// holds its data; operand generation is not request latency). Execution
/// latency covers signature canonicalization, the cache lookup, any
/// compile, and plan execution — the components a `tf.function` call
/// pays.
///
/// # Errors
/// [`ServeError`] when the backend list is empty, names an unknown or
/// duplicate backend, or selects a backend that cannot execute a dtype
/// present in the stream — all rejected here, before any dispatch.
pub fn run(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    let regs = resolve_backends(&cfg.backends)?;
    let nb = regs.len();
    let clients = cfg.resolved_clients();
    let mix = synthetic_mix(cfg.requests, cfg.n, cfg.seed, cfg.churn_every, cfg.dtype);

    // Validate dtype support against the dtypes actually present, so an
    // unsupported combination is a named error here instead of a panic
    // deep inside plan dispatch.
    for reg in &regs {
        for dtype in [Dtype::F32, Dtype::F64] {
            if mix.iter().any(|r| r.dtype == dtype) && !reg.supports(dtype) {
                return Err(ServeError::UnsupportedDtype {
                    backend: reg.name().to_string(),
                    dtype,
                });
            }
        }
    }

    // Pre-generate operands and count the distinct per-backend signatures.
    let mut pools: HashMap<(Family, usize), EnvPair> = HashMap::new();
    let mut distinct = HashSet::new();
    for req in &mix {
        pools.entry((req.family, req.n)).or_insert_with(|| EnvPair {
            f64: req.family.env::<f64>(req.n, cfg.seed),
            f32: req.family.env::<f32>(req.n, cfg.seed),
        });
        for reg in &regs {
            distinct.insert(req.signature(reg.id()).hash());
        }
    }

    let cache = PlanCache::with_shards(cfg.cache_capacity * nb, cfg.shards);
    let fw = Framework::flow();
    let executions = mix.len() * nb;
    let latency_nanos: Vec<AtomicU64> = (0..executions).map(|_| AtomicU64::new(0)).collect();
    let outcomes: Vec<AtomicU8> = (0..executions).map(|_| AtomicU8::new(0)).collect();

    let t0 = Instant::now();
    parallel_for(clients, mix.len(), |i| {
        let req = &mix[i];
        let pool = &pools[&(req.family, req.n)];
        // Backends interleave at request granularity: every backend's
        // samples see the same machine state, so the ratios are stable
        // on a loaded box even when absolute latencies are not.
        for (bi, reg) in regs.iter().enumerate() {
            let t = Instant::now();
            let sig = req.signature(reg.id());
            let (plan, lookup) = cache.get_or_compile(sig, || {
                Plan::compile(&fw, &req.family.expr(req.n), &req.family.ctx(req.n), reg)
            });
            match req.dtype {
                Dtype::F64 => {
                    std::hint::black_box(plan.execute::<f64>(&pool.f64));
                }
                Dtype::F32 => {
                    std::hint::black_box(plan.execute::<f32>(&pool.f32));
                }
            }
            latency_nanos[i * nb + bi].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            outcomes[i * nb + bi].store(
                if lookup == Lookup::Hit { OUTCOME_HIT } else { OUTCOME_COMPILED },
                Ordering::Relaxed,
            );
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let ms = |nanos: u64| nanos as f64 / 1e6;
    let lat: Vec<f64> = latency_nanos.iter().map(|a| ms(a.load(Ordering::Relaxed))).collect();
    let out: Vec<u8> = outcomes.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let all = Samples::new(lat.clone());
    // 0.0, not NaN, for an empty split: the serde_json shim writes NaN as
    // `null`, which would make the emitted document violate its own f64
    // schema. A short all-distinct stream legitimately has zero hits.
    let mean_of = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let split_means = |idx: &[usize]| {
        let cold: Vec<f64> =
            idx.iter().filter(|&&e| out[e] == OUTCOME_COMPILED).map(|&e| lat[e]).collect();
        let hit: Vec<f64> =
            idx.iter().filter(|&&e| out[e] == OUTCOME_HIT).map(|&e| lat[e]).collect();
        (mean_of(&cold), mean_of(&hit))
    };
    let all_idx: Vec<usize> = (0..executions).collect();
    let (cold_trace_mean_ms, cache_hit_mean_ms) = split_means(&all_idx);

    // Per-backend A/B records, first-listed backend as the ratio anchor.
    let mut backends = Vec::with_capacity(nb);
    let mut first_mean = 0.0;
    for (bi, reg) in regs.iter().enumerate() {
        let idx: Vec<usize> = (0..mix.len()).map(|i| i * nb + bi).collect();
        let b_lat: Vec<f64> = idx.iter().map(|&e| lat[e]).collect();
        let hits = idx.iter().filter(|&&e| out[e] == OUTCOME_HIT).count();
        let busy_secs: f64 = b_lat.iter().sum::<f64>() / 1e3;
        let mean_ms = mean_of(&b_lat);
        if bi == 0 {
            first_mean = mean_ms;
        }
        let (b_cold, b_hit) = split_means(&idx);
        backends.push(BackendRecord {
            backend: reg.name().to_string(),
            requests: mix.len(),
            hits,
            misses: mix.len() - hits,
            hit_rate: hits as f64 / mix.len() as f64,
            requests_per_sec: if busy_secs > 0.0 {
                mix.len() as f64 * clients as f64 / busy_secs
            } else {
                0.0
            },
            p50_ms: Samples::new(b_lat.clone()).median(),
            p99_ms: Samples::new(b_lat).quantile(0.99),
            mean_ms,
            cold_trace_mean_ms: b_cold,
            cache_hit_mean_ms: b_hit,
            speedup_vs_first: if mean_ms > 0.0 { first_mean / mean_ms } else { 0.0 },
        });
    }

    let mut families = Vec::new();
    for family in Family::ALL {
        let idx: Vec<usize> = (0..executions).filter(|&e| mix[e / nb].family == family).collect();
        if idx.is_empty() {
            continue;
        }
        let fam_lat: Vec<f64> = idx.iter().map(|&e| lat[e]).collect();
        families.push(FamilyRecord {
            family: family.id().to_string(),
            experiment: family.experiment().to_string(),
            requests: idx.len(),
            hits: idx.iter().filter(|&&e| out[e] == OUTCOME_HIT).count(),
            p50_ms: Samples::new(fam_lat.clone()).median(),
            mean_ms: mean_of(&fam_lat),
        });
    }

    let stats = cache.stats();
    Ok(ServeReport {
        schema: SERVE_REPORT_SCHEMA.to_string(),
        smoke: cfg.smoke,
        requests: cfg.requests,
        executions,
        clients,
        base_n: cfg.n,
        seed: cfg.seed,
        dtype: cfg.dtype.map_or("mixed", Dtype::name).to_string(),
        distinct_signatures: distinct.len(),
        wall_secs,
        requests_per_sec: executions as f64 / wall_secs,
        p50_ms: all.median(),
        p99_ms: all.quantile(0.99),
        cold_trace_mean_ms,
        cache_hit_mean_ms,
        cache_hit_speedup: if cache_hit_mean_ms > 0.0 {
            cold_trace_mean_ms / cache_hit_mean_ms
        } else {
            0.0
        },
        cache: CacheStatsRecord {
            hits: stats.hits,
            misses: stats.misses,
            retraces: stats.retraces,
            evictions: stats.evictions,
            entries: stats.entries,
            hit_rate: stats.hit_rate(),
        },
        backends,
        families,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        // Small operands, full mixed-signature stream: plumbing, not perf.
        ServeConfig {
            requests: 400,
            n: 12,
            clients: 2,
            seed: 7,
            smoke: true,
            ..ServeConfig::smoke()
        }
    }

    fn run_ok(cfg: &ServeConfig) -> ServeReport {
        run(cfg).expect("valid config serves")
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_ok(&tiny_cfg());
        let back = ServeReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(back, report);
        assert_eq!(report.schema, SERVE_REPORT_SCHEMA);
    }

    #[test]
    fn bad_schema_is_rejected() {
        let mut report = run_ok(&ServeConfig { requests: 24, ..tiny_cfg() });
        report.schema = "laab-serve-bench-v1".into();
        assert!(ServeReport::from_json(&report.to_json()).is_err());
    }

    #[test]
    fn repeated_signature_workload_mostly_hits() {
        let report = run_ok(&tiny_cfg());
        assert!(
            report.cache.hit_rate > 0.9,
            "hit rate {:.3} not > 0.9 over {} distinct signatures",
            report.cache.hit_rate,
            report.distinct_signatures
        );
        assert_eq!(report.executions, report.requests);
        assert_eq!(report.cache.hits + report.cache.misses, report.executions as u64);
        // Churn requests force chain-callsite retraces.
        assert!(report.cache.retraces >= 1, "churned stream must retrace");
        // Every family appears and the counters are consistent.
        assert_eq!(report.families.len(), Family::ALL.len());
        let fam_requests: usize = report.families.iter().map(|f| f.requests).sum();
        assert_eq!(fam_requests, report.executions);
        let fam_hits: usize = report.families.iter().map(|f| f.hits).sum();
        assert_eq!(fam_hits as u64, report.cache.hits);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.cold_trace_mean_ms.is_finite() && report.cache_hit_mean_ms.is_finite());
        // The default single-backend run still carries its A/B record.
        assert_eq!(report.backends.len(), 1);
        assert_eq!(report.backends[0].backend, "engine");
        assert_eq!(report.backends[0].speedup_vs_first, 1.0);
        assert_eq!(report.dtype, "mixed");
    }

    #[test]
    fn multi_backend_run_interleaves_and_keeps_entries_independent() {
        let cfg = ServeConfig {
            backends: vec!["engine".into(), "seed".into(), "reference".into()],
            ..tiny_cfg()
        };
        let report = run_ok(&cfg);
        assert_eq!(report.executions, report.requests * 3);
        assert_eq!(report.backends.len(), 3);

        // Identical traffic per backend: every backend saw every request,
        // and — because signatures embed the BackendId — each compiled
        // its own plans. No cross-backend hits is structural: per-backend
        // misses equal the per-backend distinct-signature count, and the
        // resident entries are the per-backend sets side by side.
        let per_backend_distinct = report.distinct_signatures / 3;
        for b in &report.backends {
            assert_eq!(b.requests, report.requests, "{}", b.backend);
            assert_eq!(b.hits + b.misses, b.requests, "{}", b.backend);
            assert_eq!(b.misses, per_backend_distinct, "{} compiled its own plans", b.backend);
            assert!(b.hit_rate > 0.9, "{} hit rate {:.3}", b.backend, b.hit_rate);
            assert!(b.p99_ms >= b.p50_ms, "{}", b.backend);
            assert!(b.requests_per_sec > 0.0 && b.speedup_vs_first > 0.0, "{}", b.backend);
        }
        assert_eq!(report.cache.evictions, 0, "capacity scales with backend count");
        assert_eq!(report.cache.entries, report.distinct_signatures);
        assert_eq!(report.backends[0].speedup_vs_first, 1.0, "baseline anchors at 1.0");

        // Hit rates are a deterministic function of the stream, so every
        // backend's counters are identical — only latencies differ.
        assert!(report.backends.iter().all(|b| b.hits == report.backends[0].hits));

        // The JSON document round-trips with the records in order.
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        let names: Vec<&str> = back.backends.iter().map(|b| b.backend.as_str()).collect();
        assert_eq!(names, ["engine", "seed", "reference"]);
    }

    #[test]
    fn unknown_backend_is_a_named_error() {
        let cfg = ServeConfig { backends: vec!["cuda".into()], ..tiny_cfg() };
        let err = run(&cfg).expect_err("unknown backend must not serve");
        match &err {
            ServeError::UnknownBackend { requested, available } => {
                assert_eq!(requested, "cuda");
                assert!(available.iter().any(|n| n == "engine"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("cuda") && text.contains("engine"), "{text}");
    }

    #[test]
    fn duplicate_and_empty_backend_lists_are_errors() {
        let cfg = ServeConfig { backends: vec!["engine".into(), "engine".into()], ..tiny_cfg() };
        assert_eq!(run(&cfg), Err(ServeError::DuplicateBackend("engine".into())));
        let cfg = ServeConfig { backends: vec![], ..tiny_cfg() };
        assert_eq!(run(&cfg), Err(ServeError::NoBackends));
    }

    #[test]
    fn unsupported_dtype_combination_is_rejected_before_dispatch() {
        static F64_ONLY: laab_backend::Registration = laab_backend::Registration::new(
            "serve-test-f64-only",
            "f64-only backend for the dtype-validation test",
            None,
            Some(&laab_backend::EngineBackend),
        );
        // Tolerate re-registration across test orders within the binary.
        let _ = laab_backend::registry::register(&F64_ONLY);

        // A mixed stream contains f32 requests → named error, no panic.
        let cfg = ServeConfig { backends: vec!["serve-test-f64-only".into()], ..tiny_cfg() };
        let err = run(&cfg).expect_err("mixed stream hits the missing f32 entry point");
        assert_eq!(
            err,
            ServeError::UnsupportedDtype {
                backend: "serve-test-f64-only".into(),
                dtype: Dtype::F32
            }
        );
        assert!(err.to_string().contains("--dtype"), "{err}");

        // Restricting the stream to f64 makes the combination valid.
        let cfg = ServeConfig { dtype: Some(Dtype::F64), requests: 48, ..cfg };
        let report = run_ok(&cfg);
        assert_eq!(report.dtype, "f64");
        assert_eq!(report.backends[0].backend, "serve-test-f64-only");
    }

    #[test]
    fn schema_is_registered_in_laab_core() {
        // The registry lives below this crate in the dependency graph and
        // mirrors the tag; this is the drift guard the registry promises.
        let spec = laab_core::bench_registry::find("serve").expect("serve is registered");
        assert_eq!(spec.schema, SERVE_REPORT_SCHEMA);
        assert_eq!(spec.artifact, "BENCH_serve.json");
        assert_eq!(laab_core::bench_registry::SERVE_SCHEMA, SERVE_REPORT_SCHEMA);
    }

    #[test]
    fn single_client_run_works() {
        let report = run_ok(&ServeConfig { requests: 32, clients: 1, ..tiny_cfg() });
        assert_eq!(report.clients, 1);
        assert_eq!(report.requests, 32);
    }

    #[test]
    fn zero_hit_stream_still_emits_valid_json() {
        // 5 requests over a mixed stream are (almost certainly) all
        // distinct signatures → zero hits. The report must stay within
        // its own f64 schema (no NaN → null) and round-trip.
        let report = run_ok(&ServeConfig { requests: 5, churn_every: 2, ..tiny_cfg() });
        assert!(report.cache_hit_mean_ms.is_finite());
        assert!(report.cache_hit_speedup.is_finite());
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn strict_timing_hit_and_backend_speedups() {
        // Timing-sensitive: a cache hit skips trace + optimize + schedule,
        // so its mean latency must sit below the cold-trace mean; and the
        // engine must out-serve the naive reference backend. Asserted
        // only under LAAB_STRICT_TIMING=1 (shared runners are too noisy).
        if std::env::var("LAAB_STRICT_TIMING").as_deref() != Ok("1") {
            return;
        }
        let cfg = ServeConfig {
            backends: vec!["engine".into(), "reference".into()],
            ..ServeConfig::smoke()
        };
        let report = run_ok(&cfg);
        assert!(
            report.cache_hit_speedup > 1.0,
            "cache-hit speedup {:.2}x not > 1x (cold {:.3}ms, hit {:.3}ms)",
            report.cache_hit_speedup,
            report.cold_trace_mean_ms,
            report.cache_hit_mean_ms
        );
        let reference = &report.backends[1];
        assert!(
            reference.speedup_vs_first < 1.0,
            "naive reference ({:.3}ms mean) should serve slower than the engine ({:.3}ms)",
            reference.mean_ms,
            report.backends[0].mean_ms
        );
    }
}
