//! The sharded, LRU-bounded concurrent plan cache.
//!
//! Mirrors `tf.function`'s concrete-function cache: keyed on the full
//! [`Signature`], bounded in size, counting hits, misses, retraces (a
//! miss for a callsite the cache has already compiled under a different
//! signature — the event `tf.function` warns about), and evictions.
//!
//! Concurrency model: the signature hash selects one of N shards; each
//! shard is an independent mutex over its entries, so clients serving
//! different signatures rarely contend. Compilation runs **while holding
//! the shard lock** — single-flight semantics: when many clients miss on
//! the same new signature at once, exactly one compiles and the rest
//! block briefly and then hit. The counters are lock-free atomics.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use laab_backend::BackendId;

use crate::plan::Plan;
use crate::signature::{OptLevel, Signature};

/// How a [`PlanCache::get_or_compile`] call was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The signature was cached; the compiled plan was reused.
    Hit,
    /// The signature was not cached; a plan was compiled on this call.
    Compiled {
        /// `true` when the callsite (`Signature::func`) had already been
        /// compiled under a *different* signature — the `tf.function`
        /// retrace event (shape/dtype/structure drift), as opposed to a
        /// first-ever trace.
        retrace: bool,
    },
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a plan (first traces + retraces).
    pub misses: u64,
    /// The subset of misses whose callsite was already known under a
    /// different signature.
    pub retraces: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
    /// The subset of misses whose exact signature had been compiled
    /// before and was evicted by the LRU bound — pure capacity churn, as
    /// opposed to first-compile misses (cold signatures) and retraces
    /// (signature drift). A rising count under steady traffic means the
    /// capacity is too small for the working set: the `tf.function`
    /// retrace-storm pathology induced by the cache itself.
    pub evicted_recompiles: u64,
    /// Total nanoseconds spent re-compiling evicted signatures — the
    /// latency the LRU bound *cost*, not merely how often it bit.
    pub recompile_nanos: u64,
    /// Plans currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean wall-clock milliseconds of one eviction-induced recompile
    /// (`0.0` before any — zero over zero is "no churn", not NaN).
    pub fn mean_recompile_ms(&self) -> f64 {
        if self.evicted_recompiles == 0 {
            0.0
        } else {
            self.recompile_nanos as f64 / 1e6 / self.evicted_recompiles as f64
        }
    }
}

struct Entry {
    sig: Signature,
    plan: Arc<Plan>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    /// Hash → entries (a bucket holds >1 entry only on a 64-bit hash
    /// collision between structurally different signatures).
    buckets: HashMap<u64, Vec<Entry>>,
    /// Monotonic recency clock; larger = more recently used.
    tick: u64,
    /// Resident entries across all buckets.
    len: usize,
}

impl Shard {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Remove the least-recently-used entry, returning its signature
    /// hash (the caller records it so a later miss on the same signature
    /// counts as an eviction-induced recompile). Caller guarantees
    /// non-empty.
    fn evict_lru(&mut self) -> u64 {
        let (&key, oldest) = self
            .buckets
            .iter()
            .filter_map(|(k, v)| v.iter().map(|e| e.last_used).min().map(|oldest| (k, oldest)))
            .min_by_key(|&(_, oldest)| oldest)
            .expect("evict_lru on an empty shard");
        let bucket = self.buckets.get_mut(&key).expect("bucket exists");
        let pos = bucket
            .iter()
            .position(|e| e.last_used == oldest)
            .expect("entry with the oldest tick exists");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        self.len -= 1;
        key
    }
}

/// Sharded, LRU-bounded map from [`Signature`] to [`Plan`].
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    retraces: AtomicU64,
    evictions: AtomicU64,
    evicted_recompiles: AtomicU64,
    recompile_nanos: AtomicU64,
    /// Hashes of every signature the LRU bound has ever evicted, so a
    /// later miss on one of them is classified as capacity churn rather
    /// than a first compile. Hash membership, not full signatures: a
    /// 64-bit collision misclassifies one counter tick, nothing more.
    /// Bounded by the distinct signatures the process ever sees.
    evicted_sigs: Mutex<HashSet<u64>>,
    /// `(callsite, backend, opt level)` → hash of the most recently
    /// compiled signature, for the retrace distinction. The callsite is
    /// tracked *per backend and per optimizer level*: dispatching one
    /// callsite to a second backend — or compiling it through the second
    /// `--opt` pipeline of an A/B run — is that key's first trace, not
    /// signature drift, and must not inflate the retrace counter. Never
    /// acquired while a shard lock is wanted by the same thread in the
    /// other order (shard → seen only).
    seen_funcs: Mutex<HashMap<(String, BackendId, OptLevel), u64>>,
}

impl PlanCache {
    /// Default shard count: enough that a handful of serving clients
    /// rarely collide.
    const DEFAULT_SHARDS: usize = 8;

    /// A cache bounded to roughly `capacity` plans, with the default
    /// shard count.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// A cache bounded to roughly `capacity` plans spread over `shards`
    /// shards (rounded up to a power of two; each shard holds up to
    /// `ceil(capacity / shards)` plans, so a skewed hash distribution can
    /// evict slightly below the nominal total).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            retraces: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_recompiles: AtomicU64::new(0),
            recompile_nanos: AtomicU64::new(0),
            evicted_sigs: Mutex::new(HashSet::new()),
            seen_funcs: Mutex::new(HashMap::new()),
        }
    }

    fn shard_of(&self, hash: u64) -> &Mutex<Shard> {
        // Upper bits: the lower bits index HashMap buckets inside the
        // shard, so reusing them here would correlate the two levels.
        let idx = (hash >> 48) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Look up `sig`, compiling (and caching) a plan with `compile` on a
    /// miss. Returns the plan and how the call was served.
    ///
    /// Single-flight per shard: `compile` runs under the shard lock, so a
    /// signature is compiled at most once no matter how many clients race
    /// on it.
    pub fn get_or_compile(
        &self,
        sig: Signature,
        compile: impl FnOnce() -> Plan,
    ) -> (Arc<Plan>, Lookup) {
        let mut shard = self.shard_of(sig.hash()).lock().unwrap_or_else(|e| e.into_inner());
        let tick = shard.next_tick();
        if let Some(bucket) = shard.buckets.get_mut(&sig.hash()) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.sig == sig) {
                entry.last_used = tick;
                let plan = Arc::clone(&entry.plan);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (plan, Lookup::Hit);
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let retrace = {
            let mut seen = self.seen_funcs.lock().unwrap_or_else(|e| e.into_inner());
            match seen.insert((sig.func().to_string(), sig.backend(), sig.opt()), sig.hash()) {
                Some(prev) => prev != sig.hash(),
                None => false,
            }
        };
        if retrace {
            self.retraces.fetch_add(1, Ordering::Relaxed);
        }
        let was_evicted = {
            let evicted = self.evicted_sigs.lock().unwrap_or_else(|e| e.into_inner());
            evicted.contains(&sig.hash())
        };

        let t0 = Instant::now();
        let plan = Arc::new(compile());
        if was_evicted {
            // An eviction-induced recompile: the capacity bound, not a
            // new signature, is what made this lookup pay the cold trace.
            self.evicted_recompiles.fetch_add(1, Ordering::Relaxed);
            self.recompile_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if shard.len >= self.per_shard_capacity {
            let evicted_hash = shard.evict_lru();
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_sigs.lock().unwrap_or_else(|e| e.into_inner()).insert(evicted_hash);
        }
        let hash = sig.hash();
        shard.buckets.entry(hash).or_default().push(Entry {
            sig,
            plan: Arc::clone(&plan),
            last_used: tick,
        });
        shard.len += 1;
        (plan, Lookup::Compiled { retrace })
    }

    /// `true` when `sig` is resident, without touching recency or
    /// counters (test/introspection hook).
    pub fn contains(&self, sig: &Signature) -> bool {
        let shard = self.shard_of(sig.hash()).lock().unwrap_or_else(|e| e.into_inner());
        shard.buckets.get(&sig.hash()).is_some_and(|bucket| bucket.iter().any(|e| e.sig == *sig))
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len).sum()
    }

    /// `true` when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            retraces: self.retraces.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_recompiles: self.evicted_recompiles.load(Ordering::Relaxed),
            recompile_nanos: self.recompile_nanos.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Dtype;
    use laab_backend::registry;
    use laab_expr::{var, Context};
    use laab_framework::Framework;

    fn sig_on(func: &str, n: usize, dtype: Dtype, backend: BackendId) -> Signature {
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        Signature::new(func, &expr, &ctx, dtype, backend)
    }

    fn sig(func: &str, n: usize, dtype: Dtype) -> Signature {
        sig_on(func, n, dtype, BackendId::ENGINE)
    }

    fn tiny_plan(n: usize) -> Plan {
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        Plan::compile(&Framework::flow(), &expr, &ctx, registry::default_backend())
    }

    #[test]
    fn hit_after_miss() {
        let cache = PlanCache::new(8);
        let s = sig("f", 4, Dtype::F64);
        let (_, l1) = cache.get_or_compile(s.clone(), || tiny_plan(4));
        assert_eq!(l1, Lookup::Compiled { retrace: false });
        let (_, l2) = cache.get_or_compile(s, || panic!("must not recompile"));
        assert_eq!(l2, Lookup::Hit);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.retraces, st.entries), (1, 1, 0, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        // Single shard, capacity 2: recency decides who goes.
        let cache = PlanCache::with_shards(2, 1);
        let (a, b, c) = (sig("a", 4, Dtype::F64), sig("b", 4, Dtype::F64), sig("c", 4, Dtype::F64));
        cache.get_or_compile(a.clone(), || tiny_plan(4));
        cache.get_or_compile(b.clone(), || tiny_plan(4));
        // Touch `a` so `b` becomes least recently used.
        let (_, l) = cache.get_or_compile(a.clone(), || panic!("a is cached"));
        assert_eq!(l, Lookup::Hit);
        cache.get_or_compile(c.clone(), || tiny_plan(4));
        assert!(cache.contains(&a), "recently-touched entry survives");
        assert!(!cache.contains(&b), "LRU entry was evicted");
        assert!(cache.contains(&c));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);

        // Re-requesting the evicted signature recompiles — and that
        // recompile is classified as eviction-induced, with its latency
        // on the record (capacity churn, not a cold signature).
        assert_eq!(cache.stats().evicted_recompiles, 0);
        let (_, l) = cache.get_or_compile(b, || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false });
        let st = cache.stats();
        assert_eq!(st.evicted_recompiles, 1);
        assert!(st.recompile_nanos > 0, "recompile latency is recorded");
        assert!(st.mean_recompile_ms() > 0.0);
    }

    #[test]
    fn first_compiles_are_not_evicted_recompiles() {
        let cache = PlanCache::new(8);
        for name in ["a", "b", "c"] {
            cache.get_or_compile(sig(name, 4, Dtype::F64), || tiny_plan(4));
        }
        let st = cache.stats();
        assert_eq!(st.misses, 3, "three first compiles");
        assert_eq!(st.evicted_recompiles, 0, "no eviction happened");
        assert_eq!(st.recompile_nanos, 0);
        assert_eq!(st.mean_recompile_ms(), 0.0, "zero over zero is no churn, not NaN");
    }

    #[test]
    fn eviction_churn_counts_every_round_trip() {
        // Capacity 1, two alternating signatures: after the first pair,
        // every miss is an eviction-induced recompile.
        let cache = PlanCache::with_shards(1, 1);
        let (a, b) = (sig("a", 4, Dtype::F64), sig("b", 4, Dtype::F64));
        for _ in 0..3 {
            cache.get_or_compile(a.clone(), || tiny_plan(4));
            cache.get_or_compile(b.clone(), || tiny_plan(4));
        }
        let st = cache.stats();
        assert_eq!(st.misses, 6);
        assert_eq!(st.evictions, 5, "every insert after the first evicts");
        assert_eq!(st.evicted_recompiles, 4, "all but the two first compiles are churn");
        assert!(st.mean_recompile_ms() > 0.0);
    }

    #[test]
    fn signature_mismatch_is_a_retrace() {
        let cache = PlanCache::new(8);
        // First trace of callsite `f`: not a retrace.
        let (_, l) = cache.get_or_compile(sig("f", 4, Dtype::F64), || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false });
        // Same callsite, new shape: retrace (tf.function's warning case).
        let (_, l) = cache.get_or_compile(sig("f", 6, Dtype::F64), || tiny_plan(6));
        assert_eq!(l, Lookup::Compiled { retrace: true });
        // Same callsite, new dtype: retrace again.
        let (_, l) = cache.get_or_compile(sig("f", 6, Dtype::F32), || tiny_plan(6));
        assert_eq!(l, Lookup::Compiled { retrace: true });
        // A different callsite's first trace is not a retrace.
        let (_, l) = cache.get_or_compile(sig("g", 4, Dtype::F64), || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false });
        assert_eq!(cache.stats().retraces, 2);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn backends_get_independent_entries_and_no_retrace_ping_pong() {
        // The A/B shape: one callsite, one signature body, two backends.
        let cache = PlanCache::new(8);
        let e = sig_on("f", 4, Dtype::F64, BackendId::ENGINE);
        let s = sig_on("f", 4, Dtype::F64, BackendId::SEED);
        // Each backend's first compile is a first trace, not a retrace —
        // the callsite is tracked per backend.
        let (_, l) = cache.get_or_compile(e.clone(), || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false });
        let (_, l) = cache.get_or_compile(s.clone(), || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false });
        // No cross-backend hits: both entries are independently resident
        // and each backend hits only its own plan.
        assert!(cache.contains(&e) && cache.contains(&s));
        assert_eq!(cache.len(), 2);
        let (_, l) = cache.get_or_compile(e, || panic!("engine plan is cached"));
        assert_eq!(l, Lookup::Hit);
        let (_, l) = cache.get_or_compile(s, || panic!("seed plan is cached"));
        assert_eq!(l, Lookup::Hit);
        assert_eq!(cache.stats().retraces, 0);
    }

    #[test]
    fn opt_levels_get_independent_entries_and_no_retrace_ping_pong() {
        // The --opt A/B shape: one callsite, one backend, both optimizer
        // levels interleaved. The retrace key includes the opt level, so
        // the alternation is two independent first traces — not
        // signature drift — and subsequent alternating lookups are hits.
        let cache = PlanCache::new(8);
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", 4, 4).with("B", 4, 4);
        let p =
            Signature::with_opt("f", &expr, &ctx, Dtype::F64, BackendId::ENGINE, OptLevel::Passes);
        let g =
            Signature::with_opt("f", &expr, &ctx, Dtype::F64, BackendId::ENGINE, OptLevel::Egraph);
        let (_, l) = cache.get_or_compile(p.clone(), || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false });
        let (_, l) = cache.get_or_compile(g.clone(), || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: false }, "second opt level is a first trace");
        assert!(cache.contains(&p) && cache.contains(&g));
        assert_eq!(cache.len(), 2);
        for _ in 0..3 {
            let (_, l) = cache.get_or_compile(p.clone(), || panic!("passes plan is cached"));
            assert_eq!(l, Lookup::Hit);
            let (_, l) = cache.get_or_compile(g.clone(), || panic!("egraph plan is cached"));
            assert_eq!(l, Lookup::Hit);
        }
        assert_eq!(cache.stats().retraces, 0, "A/B multiplicity is not signature drift");
        // A genuine body change at one level still counts.
        let re = var("A").t() * var("B");
        let p2 =
            Signature::with_opt("f", &re, &ctx, Dtype::F64, BackendId::ENGINE, OptLevel::Passes);
        let (_, l) = cache.get_or_compile(p2, || tiny_plan(4));
        assert_eq!(l, Lookup::Compiled { retrace: true });
        assert_eq!(cache.stats().retraces, 1);
    }

    #[test]
    fn concurrent_hits_count_exactly() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(PlanCache::new(8));
        let compiles = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let rounds = 50;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let compiles = Arc::clone(&compiles);
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        let s = sig("shared", 4, Dtype::F64);
                        cache.get_or_compile(s, || {
                            compiles.fetch_add(1, Ordering::Relaxed);
                            tiny_plan(4)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Single-flight: the racing first round compiled exactly once, and
        // every other lookup hit.
        assert_eq!(compiles.load(Ordering::Relaxed), 1);
        let st = cache.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits, (threads * rounds - 1) as u64);
        assert_eq!(st.entries, 1);
    }

    #[test]
    fn shards_round_up_to_power_of_two() {
        let cache = PlanCache::with_shards(16, 3);
        assert_eq!(cache.shards.len(), 4);
        assert!(cache.is_empty());
        // Capacity 16 over 4 shards: 4 per shard.
        assert_eq!(cache.per_shard_capacity, 4);
    }
}
