//! Seeded, deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] names which faults to inject and at what rate; a
//! [`FaultInjector`] applies the plan inside the server. Every decision
//! is a pure function of `(seed, fault kind, request id)` — an FNV-1a
//! hash against the rate's denominator — so a test (or a rerun) can
//! compute the *exact* set of request ids each fault will hit before
//! the server ever starts. That is what makes the acceptance criterion
//! "counters exactly match the injected plan" checkable: the harness
//! derives the expected shed/failed/drop counts from the plan, runs the
//! workload, and asserts equality rather than eyeballing rates.
//!
//! Each fault fires **at most once per (kind, request id)**: a client
//! that retries a dropped request converges instead of being dropped
//! forever, and the deterministic id sets stay exact under retries.
//!
//! The four fault kinds, and where the server applies them:
//!
//! * **drop** — the reader swallows the request after decode; the client
//!   sees silence and must retry (exercises client timeouts + retry).
//! * **delay** — the executor sleeps before running the batch member
//!   (exercises deadline expiry and backlog growth).
//! * **panic** — the executor panics mid-execution (exercises
//!   `catch_unwind` isolation and quarantine).
//! * **corrupt** — the response checksum is flipped (exercises client
//!   verification).
//!
//! Plans parse from the CLI spec the README documents, e.g.
//! `--faults panic:1/64,delay:1/16x500,drop:1/8,corrupt:0/1`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A fault rate: `num` hits per `den` ids (decided by hash, not by a
/// sliding counter, so the decision for an id never changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    /// Hits per `den`.
    pub num: u32,
    /// The denominator (> 0).
    pub den: u32,
}

impl Ratio {
    fn parse(s: &str) -> Result<Self, String> {
        let (num, den) = match s.split_once('/') {
            Some((n, d)) => (n, d),
            None => (s, "1"),
        };
        let num: u32 =
            num.trim().parse().map_err(|_| format!("bad fault rate numerator `{num}`"))?;
        let den: u32 =
            den.trim().parse().map_err(|_| format!("bad fault rate denominator `{den}`"))?;
        if den == 0 {
            return Err("fault rate denominator must be > 0".into());
        }
        Ok(Ratio { num, den })
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// The injectable fault kinds. The discriminant salts the decision
/// hash, so each kind selects an independent id set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Swallow the request at the reader (client sees no response).
    Drop,
    /// Sleep before executing the request.
    Delay,
    /// Panic inside the executor while running the request's batch.
    Panic,
    /// Flip the response checksum.
    Corrupt,
}

impl FaultKind {
    fn salt(self) -> u8 {
        match self {
            FaultKind::Drop => 1,
            FaultKind::Delay => 2,
            FaultKind::Panic => 3,
            FaultKind::Corrupt => 4,
        }
    }
}

/// A parsed fault-injection plan: which faults fire, at what rates, and
/// how long injected delays sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Requests silently dropped at the reader.
    pub drop: Option<Ratio>,
    /// Requests delayed before execution, and the sleep in microseconds.
    pub delay: Option<(Ratio, u64)>,
    /// Requests whose execution panics.
    pub panic: Option<Ratio>,
    /// Requests whose response checksum is corrupted.
    pub corrupt: Option<Ratio>,
}

impl FaultPlan {
    /// Parse a CLI spec: comma-separated `kind:rate` entries where
    /// `rate` is `num/den` (or a bare integer, denominator 1) and the
    /// `delay` entry carries a sleep suffix, `delay:RATExMICROS`.
    ///
    /// ```
    /// use laab_serve::fault::FaultPlan;
    /// let plan = FaultPlan::parse("panic:1/64,delay:1/16x500").unwrap();
    /// assert_eq!(plan.panic.unwrap().den, 64);
    /// assert_eq!(plan.delay.unwrap().1, 500);
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        if spec.trim().is_empty() {
            return Err("empty fault spec".into());
        }
        for entry in spec.split(',') {
            let (kind, rate) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` is not `kind:rate`"))?;
            match kind.trim() {
                "drop" => {
                    if plan.drop.replace(Ratio::parse(rate)?).is_some() {
                        return Err("duplicate `drop` fault entry".into());
                    }
                }
                "delay" => {
                    let (rate, micros) = rate.split_once('x').ok_or_else(|| {
                        format!("delay entry `{entry}` needs `delay:RATExMICROS`")
                    })?;
                    let micros: u64 = micros
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad delay microseconds `{micros}`"))?;
                    if plan.delay.replace((Ratio::parse(rate)?, micros)).is_some() {
                        return Err("duplicate `delay` fault entry".into());
                    }
                }
                "panic" => {
                    if plan.panic.replace(Ratio::parse(rate)?).is_some() {
                        return Err("duplicate `panic` fault entry".into());
                    }
                }
                "corrupt" => {
                    if plan.corrupt.replace(Ratio::parse(rate)?).is_some() {
                        return Err("duplicate `corrupt` fault entry".into());
                    }
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Whether `kind` fires for request `id` under `seed` — the pure
    /// decision, independent of injector state. Tests use this to
    /// precompute the exact id set a run will fault.
    pub fn fires(&self, seed: u64, kind: FaultKind, id: u64) -> bool {
        let ratio = match kind {
            FaultKind::Drop => self.drop,
            FaultKind::Delay => self.delay.map(|(r, _)| r),
            FaultKind::Panic => self.panic,
            FaultKind::Corrupt => self.corrupt,
        };
        let Some(r) = ratio else { return false };
        if r.num == 0 {
            return false;
        }
        if r.num >= r.den {
            return true;
        }
        // FNV-1a over the kind salt and the id bytes, keyed by the
        // seed, then an avalanche finalizer: `% den` looks only at the
        // low bits (every realistic rate has a small denominator), and
        // bare FNV never propagates high-bit differences downward —
        // without the finalizer the kind salt and the seed's high bits
        // would be inert for power-of-two denominators.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET ^ seed;
        h ^= u64::from(kind.salt());
        h = h.wrapping_mul(FNV_PRIME);
        for b in id.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % u64::from(r.den)) < u64::from(r.num)
    }

    /// True when no fault has a nonzero rate.
    pub fn is_empty(&self) -> bool {
        let zero = |r: Option<Ratio>| r.is_none_or(|r| r.num == 0);
        zero(self.drop)
            && zero(self.delay.map(|(r, _)| r))
            && zero(self.panic)
            && zero(self.corrupt)
    }
}

impl std::fmt::Display for FaultPlan {
    /// The canonical spec string; `parse(plan.to_string())` round-trips.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut std::fmt::Formatter<'_>| {
            let s = if first { "" } else { "," };
            first = false;
            write!(f, "{s}")
        };
        if let Some(r) = self.drop {
            sep(f)?;
            write!(f, "drop:{r}")?;
        }
        if let Some((r, us)) = self.delay {
            sep(f)?;
            write!(f, "delay:{r}x{us}")?;
        }
        if let Some(r) = self.panic {
            sep(f)?;
            write!(f, "panic:{r}")?;
        }
        if let Some(r) = self.corrupt {
            sep(f)?;
            write!(f, "corrupt:{r}")?;
        }
        if first {
            write!(f, "drop:0/1")?; // an empty plan still prints a valid spec
        }
        Ok(())
    }
}

/// Counters for faults actually injected (not merely configured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Requests dropped at the reader.
    pub drops: u64,
    /// Requests delayed before execution.
    pub delays: u64,
    /// Executions panicked.
    pub panics: u64,
    /// Response checksums corrupted.
    pub corrupts: u64,
}

/// Applies a [`FaultPlan`] at runtime, enforcing fire-once-per-(kind,
/// id) semantics and counting what actually fired.
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    fired: Mutex<HashSet<(u8, u64)>>,
    drops: AtomicU64,
    delays: AtomicU64,
    panics: AtomicU64,
    corrupts: AtomicU64,
}

impl FaultInjector {
    /// Build an injector for `plan`, salting every decision with `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            seed,
            fired: Mutex::new(HashSet::new()),
            drops: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            corrupts: AtomicU64::new(0),
        }
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide-and-fire: true exactly once per (kind, id) that the plan
    /// selects; always false on later presentations of the same pair.
    fn fire(&self, kind: FaultKind, id: u64, counter: &AtomicU64) -> bool {
        if !self.plan.fires(self.seed, kind, id) {
            return false;
        }
        let fresh = self.fired.lock().expect("fault injector mutex").insert((kind.salt(), id));
        if fresh {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Should the reader swallow request `id`? Fires at most once, so a
    /// retried request gets through.
    pub fn should_drop(&self, id: u64) -> bool {
        self.fire(FaultKind::Drop, id, &self.drops)
    }

    /// The sleep to inject before executing request `id`, if any.
    pub fn delay_for(&self, id: u64) -> Option<Duration> {
        let (_, micros) = self.plan.delay?;
        self.fire(FaultKind::Delay, id, &self.delays).then(|| Duration::from_micros(micros))
    }

    /// Should the executor panic while running request `id`'s batch?
    pub fn should_panic(&self, id: u64) -> bool {
        self.fire(FaultKind::Panic, id, &self.panics)
    }

    /// Should request `id`'s response checksum be corrupted?
    pub fn should_corrupt(&self, id: u64) -> bool {
        self.fire(FaultKind::Corrupt, id, &self.corrupts)
    }

    /// Snapshot of what actually fired so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            drops: self.drops.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            corrupts: self.corrupts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_spec_grammar() {
        let plan = FaultPlan::parse("drop:1/8,delay:1/16x500,panic:1/64,corrupt:3").unwrap();
        assert_eq!(plan.drop, Some(Ratio { num: 1, den: 8 }));
        assert_eq!(plan.delay, Some((Ratio { num: 1, den: 16 }, 500)));
        assert_eq!(plan.panic, Some(Ratio { num: 1, den: 64 }));
        assert_eq!(plan.corrupt, Some(Ratio { num: 3, den: 1 }));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in ["drop:1/8", "delay:1/16x500,panic:1/64", "drop:1/2,corrupt:1/3"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan, "spec {spec}");
        }
    }

    #[test]
    fn bad_specs_are_structured_errors() {
        for bad in
            ["", "explode:1/2", "panic", "panic:1/0", "delay:1/4", "delay:1/4xfast", "panic:x/2"]
        {
            assert!(FaultPlan::parse(bad).is_err(), "spec `{bad}` should fail");
        }
        assert!(FaultPlan::parse("panic:1/2,panic:1/3").is_err(), "duplicates rejected");
    }

    #[test]
    fn decisions_are_deterministic_and_kind_independent() {
        let plan = FaultPlan::parse("drop:1/4,panic:1/4").unwrap();
        let drops: Vec<u64> = (0..256).filter(|&id| plan.fires(7, FaultKind::Drop, id)).collect();
        let panics: Vec<u64> = (0..256).filter(|&id| plan.fires(7, FaultKind::Panic, id)).collect();
        // Re-evaluating gives the same sets.
        let drops2: Vec<u64> = (0..256).filter(|&id| plan.fires(7, FaultKind::Drop, id)).collect();
        assert_eq!(drops, drops2);
        // The kinds select different id sets (salted hashes), and a 1/4
        // rate over 256 ids lands near 64 for both.
        assert_ne!(drops, panics);
        for count in [drops.len(), panics.len()] {
            assert!((32..=96).contains(&count), "1/4 of 256 ids ≈ 64, got {count}");
        }
        // A different seed selects a different set.
        let other: Vec<u64> = (0..256).filter(|&id| plan.fires(8, FaultKind::Drop, id)).collect();
        assert_ne!(drops, other);
    }

    #[test]
    fn zero_and_full_rates_are_exact() {
        let plan = FaultPlan::parse("drop:0/8,panic:1/1").unwrap();
        assert!((0..100).all(|id| !plan.fires(1, FaultKind::Drop, id)));
        assert!((0..100).all(|id| plan.fires(1, FaultKind::Panic, id)));
        assert!(!plan.is_empty(), "panic 1/1 is not empty");
        assert!(FaultPlan::parse("drop:0/8").unwrap().is_empty());
    }

    #[test]
    fn injector_fires_once_per_id_and_counts() {
        let plan = FaultPlan::parse("drop:1/1,delay:1/1x250").unwrap();
        let inj = FaultInjector::new(plan, 42);
        assert!(inj.should_drop(9), "first presentation fires");
        assert!(!inj.should_drop(9), "retry converges");
        assert_eq!(inj.delay_for(9), Some(Duration::from_micros(250)));
        assert_eq!(inj.delay_for(9), None);
        assert!(!inj.should_panic(9), "panic not in the plan");
        let counts = inj.counts();
        assert_eq!((counts.drops, counts.delays, counts.panics, counts.corrupts), (1, 1, 0, 0));
    }
}
