//! # laab-serve — the compiled-plan cache and request-serving layer
//!
//! The paper's graph-mode columns exist because `tf.function` does not
//! re-trace on every call: it keys a cache of compiled *concrete
//! functions* on the call signature (structure, shapes, dtype) and
//! amortizes tracing + optimization across calls, retracing only when the
//! signature changes. The experiment suite (`laab-core`) exercises that
//! machinery once per experiment; this crate builds the layer that
//! *amortizes* it — turning the one-shot benchmark into a system that
//! sustains load, the ROADMAP's serving direction:
//!
//! * [`Signature`] — a canonical description of one request: expression
//!   structure, operand shapes, property flags, and element dtype, with a
//!   fast stable (FNV-1a) hash. Two calls with equal signatures may share
//!   a compiled plan; a changed signature must retrace.
//! * [`Plan`] — the compiled artifact: the pass-optimized
//!   [`Graph`](laab_graph::Graph) extracted from a traced
//!   [`Function`](laab_framework::Function) plus a precomputed
//!   [`Schedule`](laab_graph::Schedule) (reference counts and the
//!   peak-live workspace layout). Built once per signature, re-executed
//!   with fresh operand bindings; a plan-cache hit is bitwise-identical
//!   to a cold trace.
//! * [`PlanCache`] — a sharded, LRU-bounded concurrent cache from
//!   signature to plan, with hit/miss/retrace/eviction counters
//!   mirroring `tf.function`'s retrace semantics.
//! * [`workload`] — synthetic request families drawn from the paper's
//!   Experiments 1–5 (CSE traps, chains, Gram products, slicing,
//!   distributivity, solver residuals), each declaring which operands
//!   are request-varying payloads (the data batched execution
//!   column-stacks).
//! * [`mod@bench`] — the multi-client serving loop: an **admission
//!   window** coalesces pending same-signature requests into batches
//!   (`laab serve --batch-window`), clients on the `laab-kernels`
//!   worker pool drain whole batches through the cache — executing each
//!   batch once via [`Plan::execute_batched`] (column-stacked multi-RHS
//!   GEMM where the compile-time analysis proves it legal, a bitwise
//!   per-request fallback otherwise) — and the report carries
//!   requests/s, p50/p99 latency, the interleaved batched-vs-solo
//!   split, occupancy histograms, cold-trace vs cache-hit latency, and
//!   cache statistics (including eviction-induced recompiles) as a
//!   machine-readable `BENCH_serve.json`
//!   ([`bench::SERVE_REPORT_SCHEMA`]).
//!
//! Signatures (and therefore cached plans) carry the execution
//! [`BackendId`] they target, so the serving
//! loop can drive one request stream through several `laab-backend`
//! backends *interleaved* (`laab serve --backends engine,seed`) and
//! report per-backend throughput, latency, and speedup ratios — the
//! paper's cross-strategy comparison axis, reproduced at the serving
//! layer.
//!
//! Signatures also carry the [`OptLevel`] the plan compiles through:
//! `--opt egraph` A/Bs the trace-time pass pipeline against
//! `laab-rewrite`'s equality-saturation optimizer interleaved (each
//! request compiles once per level, never aliased in the cache) and the
//! report adds per-family extracted-cost vs. measured-latency records,
//! cross-level numeric probes (`opt_mismatches`), and the saturation
//! budget-hit fallback count.
//!
//! Surfaced on the CLI as `laab serve`.

#![deny(missing_docs)]

pub mod admission;
pub mod bench;
mod cache;
pub mod fault;
pub mod loadgen;
mod plan;
pub mod proto;
pub mod server;
mod signature;
pub mod workload;

pub use admission::{AdmissionQueue, AdmissionStats, FlushKind, SubmitOutcome};
pub use bench::{
    run, AdmissionRecord, BackendRecord, OptFamilyRecord, OptLevelRecord, OverloadRecord,
    ServeConfig, ServeConfigBuilder, ServeError, ServeReport,
};
pub use cache::{CacheStats, Lookup, PlanCache};
pub use fault::{FaultCounts, FaultInjector, FaultKind, FaultPlan};
pub use laab_backend::BackendId;
pub use loadgen::{Arrival, LoadgenConfig, LoadgenReport};
pub use plan::{EgraphReport, Plan};
pub use proto::{FrameError, Message, RequestMsg, ResponseMsg};
pub use server::{Listen, Server, ServerStats};
pub use signature::{Dtype, OptLevel, Signature};
