//! The standalone load generator: drives a running [`Server`](crate::Server)
//! over its socket and measures latency *from the client side*.
//!
//! Where `laab serve` reports what the serving loop saw, `laab loadgen`
//! reports what a caller would see: round-trip time over the wire,
//! including framing, the admission queue's deadline-or-occupancy wait,
//! and the response's journey back. It replays the same deterministic
//! [`synthetic_mix`] stream the in-process benchmark uses, under three
//! swept arrival processes:
//!
//! - **closed-loop** — each connection keeps exactly one request in
//!   flight; throughput is latency-bound.
//! - **open-loop Poisson** — requests arrive on an exponential clock at
//!   a configured rate regardless of completions; queueing delay shows
//!   up honestly instead of being absorbed by back-pressure.
//! - **bursty** — Poisson-spaced *bursts* of back-to-back requests, the
//!   adversarial case for a deadline-flushed admission window.
//!
//! Because the stream, the operand pools, and the payload draws are all
//! seeded, the generator can also compute each request's expected result
//! locally and compare it to the server's response
//! [checksum](crate::proto::result_checksum) — a bitwise end-to-end
//! check that the network path executes the *same arithmetic* as the
//! in-process loop (exact for backends whose batched execution is a
//! per-item loop, e.g. `seed`/`reference`; disable with
//! [`LoadgenConfig::verify`] for backends with stacked batched kernels).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use laab_backend::{BackendScalar, Dtype, Registration};
use laab_framework::Framework;
use laab_stats::Samples;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

use crate::bench::{resolve_backends, ServeError};
use crate::cache::PlanCache;
use crate::plan::Plan;
use crate::proto::{self, Message, Outcome, RequestMsg};
use crate::server::{connect, Listen};
use crate::workload::{synthetic_mix, Request};
use crate::FlushKind;

/// Schema tag embedded in every [`LoadgenReport`]. `laab-core`'s bench
/// registry mirrors this constant; a test holds the pair equal.
pub const LOADGEN_REPORT_SCHEMA: &str = "laab-loadgen-v1";

/// An arrival process for one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// One request in flight per connection; the next departs when the
    /// response lands.
    Closed,
    /// Open-loop Poisson arrivals at `rate` requests/second (split
    /// evenly across connections), independent of completions.
    OpenPoisson {
        /// Aggregate arrival rate, requests per second.
        rate: f64,
    },
    /// Poisson-spaced bursts: `burst` requests back-to-back, bursts
    /// timed so the aggregate rate is still `rate`.
    Bursty {
        /// Aggregate arrival rate, requests per second.
        rate: f64,
        /// Requests per burst.
        burst: usize,
    },
}

impl Arrival {
    /// Parse a CLI spec: `closed`, `poisson:<rate>`, or
    /// `bursty:<rate>x<burst>`.
    pub fn parse(spec: &str) -> Result<Arrival, ServeError> {
        let bad = || ServeError::BadArrival(spec.to_string());
        if spec == "closed" {
            return Ok(Arrival::Closed);
        }
        if let Some(rate) = spec.strip_prefix("poisson:") {
            let rate: f64 = rate.parse().map_err(|_| bad())?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(bad());
            }
            return Ok(Arrival::OpenPoisson { rate });
        }
        if let Some(rest) = spec.strip_prefix("bursty:") {
            let (rate, burst) = rest.split_once('x').ok_or_else(bad)?;
            let rate: f64 = rate.parse().map_err(|_| bad())?;
            let burst: usize = burst.parse().map_err(|_| bad())?;
            if !rate.is_finite() || rate <= 0.0 || burst == 0 {
                return Err(bad());
            }
            return Ok(Arrival::Bursty { rate, burst });
        }
        Err(bad())
    }

    /// The canonical spec spelling ([`parse`](Self::parse) inverts it).
    pub fn display(&self) -> String {
        match self {
            Arrival::Closed => "closed".to_string(),
            Arrival::OpenPoisson { rate } => format!("poisson:{rate}"),
            Arrival::Bursty { rate, burst } => format!("bursty:{rate}x{burst}"),
        }
    }

    fn rate(&self) -> f64 {
        match self {
            Arrival::Closed => 0.0,
            Arrival::OpenPoisson { rate } | Arrival::Bursty { rate, .. } => *rate,
        }
    }
}

/// What to drive at the server and how hard.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address spec (`unix:<path>` or `tcp:<host:port>`).
    pub addr: String,
    /// Requests per arrival-process run.
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Base operand size of the request stream.
    pub n: usize,
    /// Stream/pool seed. **Must match the server's `--seed`** for the
    /// bitwise verification to be meaningful (the payload draws hang off
    /// it on both sides).
    pub seed: u64,
    /// Every `churn_every`-th request changes signature (0 disables).
    pub churn_every: usize,
    /// Pin the stream to one precision (`None` = mixed).
    pub dtype: Option<Dtype>,
    /// Backend name every request asks the server to dispatch to.
    pub backend: String,
    /// Arrival processes to sweep, one run each, in order.
    pub arrivals: Vec<Arrival>,
    /// Compute each request's expected checksum locally and count
    /// mismatches. Exact only for backends whose batched execution is
    /// per-item (`seed`, `reference`).
    pub verify: bool,
    /// Send a [`Message::Shutdown`] after the last run, so the server
    /// exits and (for unix sockets) removes its socket file.
    pub shutdown: bool,
    /// `true` for the CI smoke protocol (recorded in the report).
    pub smoke: bool,
}

impl LoadgenConfig {
    /// The CI smoke protocol: a small stream, all three arrival
    /// processes, bitwise verification on, shutdown at the end.
    pub fn smoke(addr: &str) -> Self {
        LoadgenConfig {
            addr: addr.to_string(),
            requests: 96,
            connections: 2,
            n: 24,
            // Matches `ServeConfig::smoke()` — the server's operand
            // pools and payload draws hang off *its* seed, so the
            // bitwise oracle only lines up when the two agree.
            seed: 0x1AAB,
            churn_every: 7,
            dtype: None,
            backend: "seed".to_string(),
            arrivals: vec![
                Arrival::Closed,
                Arrival::OpenPoisson { rate: 2000.0 },
                Arrival::Bursty { rate: 2000.0, burst: 8 },
            ],
            verify: true,
            shutdown: true,
            smoke: true,
        }
    }
}

/// One arrival-process run's client-side measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ArrivalRun {
    /// The arrival spec ([`Arrival::display`]).
    pub arrival: String,
    /// Aggregate arrival rate (0 for closed-loop).
    pub rate: f64,
    /// Requests sent.
    pub sent: u64,
    /// `Ok` responses received.
    pub completed: u64,
    /// Error responses received.
    pub errors: u64,
    /// Client-observed round-trip p50, microseconds.
    pub rtt_p50_us: f64,
    /// Client-observed round-trip p99, microseconds.
    pub rtt_p99_us: f64,
    /// Client-observed round-trip mean, microseconds.
    pub rtt_mean_us: f64,
    /// Server-reported queue delay p50, microseconds.
    pub queue_p50_us: f64,
    /// Server-reported queue delay p99, microseconds.
    pub queue_p99_us: f64,
    /// Mean batch occupancy over `Ok` responses.
    pub occupancy_mean: f64,
    /// Responses whose batch flushed on occupancy.
    pub occupancy_flushes: u64,
    /// Responses whose batch flushed on deadline.
    pub deadline_flushes: u64,
    /// Responses whose batch flushed on drain.
    pub drain_flushes: u64,
    /// Responses whose checksum differed from the local oracle.
    pub checksum_mismatches: u64,
    /// Wall-clock of the run, milliseconds.
    pub elapsed_ms: f64,
    /// Completed responses per wall-clock second.
    pub throughput_rps: f64,
}

/// The client-side report `laab loadgen` emits (schema
/// [`LOADGEN_REPORT_SCHEMA`]).
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Schema tag.
    pub schema: String,
    /// Server address driven (canonical form).
    pub addr: String,
    /// Backend requested of the server.
    pub backend: String,
    /// Requests per run.
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Base operand size.
    pub n: usize,
    /// Stream seed.
    pub seed: u64,
    /// Whether bitwise verification ran.
    pub verified: bool,
    /// Whether this was the smoke protocol.
    pub smoke: bool,
    /// One entry per swept arrival process, in run order.
    pub runs: Vec<ArrivalRun>,
    /// Total checksum mismatches across all runs (0 = the socket path is
    /// bitwise identical to the in-process oracle).
    pub checksum_mismatches: u64,
}

impl LoadgenReport {
    /// Pretty-printed JSON (the `BENCH_loadgen.json` artifact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("LoadgenReport serializes infallibly")
    }
}

/// One decoded `Ok` response with its client-side round trip.
struct Sample {
    rtt_ns: u64,
    queue_ns: u64,
    occupancy: u32,
    flush: FlushKind,
    checksum: u64,
    id: u64,
}

struct ConnResult {
    samples: Vec<Sample>,
    sent: u64,
    errors: u64,
}

/// Drive the server at `cfg.addr` through every configured arrival
/// process and assemble the client-side report.
///
/// # Errors
/// [`ServeError::BadListen`]/[`ServeError::Connect`] for an unreachable
/// address, [`ServeError::Socket`]/[`ServeError::Frame`] for transport
/// failures mid-run, plus config rejections ([`ServeError::UnknownBackend`]
/// when `verify` needs a backend this binary does not link).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    let addr = Listen::parse(&cfg.addr)?;
    if cfg.arrivals.is_empty() {
        return Err(ServeError::BadArrival("no arrival processes configured".to_string()));
    }
    let requests = cfg.requests.max(1);
    let connections = cfg.connections.clamp(1, requests);
    let mix = synthetic_mix(requests, cfg.n, cfg.seed, cfg.churn_every, cfg.dtype);
    let expected: Vec<u64> = if cfg.verify {
        let reg = resolve_backends(std::slice::from_ref(&cfg.backend))?[0];
        oracle_checksums(&mix, reg, cfg.seed)
    } else {
        Vec::new()
    };

    let mut runs = Vec::with_capacity(cfg.arrivals.len());
    let mut total_mismatches = 0u64;
    for arrival in &cfg.arrivals {
        let run = drive_once(&addr, cfg, &mix, *arrival, &expected, connections)?;
        total_mismatches += run.checksum_mismatches;
        runs.push(run);
    }

    if cfg.shutdown {
        shutdown_server(&addr)?;
    }

    Ok(LoadgenReport {
        schema: LOADGEN_REPORT_SCHEMA.to_string(),
        addr: addr.display(),
        backend: cfg.backend.clone(),
        requests,
        connections,
        n: cfg.n,
        seed: cfg.seed,
        verified: cfg.verify,
        smoke: cfg.smoke,
        runs,
        checksum_mismatches: total_mismatches,
    })
}

/// Send an in-band shutdown and wait for the ack.
fn shutdown_server(addr: &Listen) -> Result<(), ServeError> {
    let mut stream = connect(addr)?;
    proto::write_message(&mut stream, &Message::Shutdown)
        .map_err(|e| ServeError::Socket(Arc::new(e)))?;
    loop {
        match proto::read_message(&mut stream)? {
            Some(Message::ShutdownAck) | None => return Ok(()),
            Some(_) => continue,
        }
    }
}

/// One arrival process against one fresh set of connections.
fn drive_once(
    addr: &Listen,
    cfg: &LoadgenConfig,
    mix: &[Request],
    arrival: Arrival,
    expected: &[u64],
    connections: usize,
) -> Result<ArrivalRun, ServeError> {
    // Round-robin the stream across connections; ids index into `mix`,
    // so the oracle lookup on the way back is O(1).
    let mut shares: Vec<Vec<(u64, Request)>> = vec![Vec::new(); connections];
    for (i, req) in mix.iter().enumerate() {
        shares[i % connections].push((i as u64, *req));
    }
    let started = Instant::now();
    let transport_err: Mutex<Option<ServeError>> = Mutex::new(None);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for (c, share) in shares.into_iter().enumerate() {
            let (transport_err, backend) = (&transport_err, cfg.backend.as_str());
            let rate_share = arrival.rate() / connections as f64;
            let seed = cfg.seed ^ 0x10AD_0000 ^ (c as u64);
            handles.push(scope.spawn(move || {
                match drive_connection(addr, share, backend, arrival, rate_share, seed) {
                    Ok(r) => r,
                    Err(e) => {
                        transport_err.lock().expect("loadgen error slot").get_or_insert(e);
                        ConnResult { samples: Vec::new(), sent: 0, errors: 0 }
                    }
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("loadgen connection thread")).collect()
    });
    if let Some(e) = transport_err.into_inner().expect("loadgen error slot") {
        return Err(e);
    }
    let elapsed = started.elapsed();

    let mut rtt_us = Vec::new();
    let mut queue_us = Vec::new();
    let (mut sent, mut errors, mut occ_sum, mut mismatches) = (0u64, 0u64, 0u64, 0u64);
    let (mut occ_fl, mut dl_fl, mut dr_fl) = (0u64, 0u64, 0u64);
    let mut completed = 0u64;
    for r in &results {
        sent += r.sent;
        errors += r.errors;
        for s in &r.samples {
            completed += 1;
            rtt_us.push(s.rtt_ns as f64 / 1_000.0);
            queue_us.push(s.queue_ns as f64 / 1_000.0);
            occ_sum += s.occupancy as u64;
            match s.flush {
                FlushKind::Occupancy => occ_fl += 1,
                FlushKind::Deadline => dl_fl += 1,
                FlushKind::Drain => dr_fl += 1,
            }
            if !expected.is_empty() && expected[s.id as usize] != s.checksum {
                mismatches += 1;
            }
        }
    }
    // `Samples` rejects an empty set; a run where every request errored
    // still deserves a report row (of zeros).
    let summarize = |v: Vec<f64>| -> (f64, f64, f64) {
        if v.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let s = Samples::new(v);
        (s.median(), s.quantile(0.99), s.mean())
    };
    let (rtt_p50, rtt_p99, rtt_mean) = summarize(rtt_us);
    let (queue_p50, queue_p99, _) = summarize(queue_us);
    Ok(ArrivalRun {
        arrival: arrival.display(),
        rate: arrival.rate(),
        sent,
        completed,
        errors,
        rtt_p50_us: rtt_p50,
        rtt_p99_us: rtt_p99,
        rtt_mean_us: rtt_mean,
        queue_p50_us: queue_p50,
        queue_p99_us: queue_p99,
        occupancy_mean: if completed == 0 { 0.0 } else { occ_sum as f64 / completed as f64 },
        occupancy_flushes: occ_fl,
        deadline_flushes: dl_fl,
        drain_flushes: dr_fl,
        checksum_mismatches: mismatches,
        elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
    })
}

fn wire_request(id: u64, req: &Request, backend: &str) -> Message {
    Message::Request(RequestMsg {
        id,
        family: req.family.id().to_string(),
        n: req.n as u64,
        dtype: req.dtype,
        backend: backend.to_string(),
        payload: req.payload,
    })
}

/// One connection's share of a run. Closed-loop is a synchronous
/// request/response loop; the open-loop shapes split into a pacing
/// sender and a collecting reader so queueing at the server cannot
/// back-pressure the arrival clock.
fn drive_connection(
    addr: &Listen,
    share: Vec<(u64, Request)>,
    backend: &str,
    arrival: Arrival,
    rate_share: f64,
    seed: u64,
) -> Result<ConnResult, ServeError> {
    let mut stream = connect(addr)?;
    let sock = |e: std::io::Error| ServeError::Socket(Arc::new(e));
    if share.is_empty() {
        return Ok(ConnResult { samples: Vec::new(), sent: 0, errors: 0 });
    }

    if matches!(arrival, Arrival::Closed) {
        let mut samples = Vec::with_capacity(share.len());
        let mut errors = 0u64;
        let mut sent = 0u64;
        for (id, req) in &share {
            let t0 = Instant::now();
            proto::write_message(&mut stream, &wire_request(*id, req, backend)).map_err(sock)?;
            sent += 1;
            match proto::read_message(&mut stream)? {
                Some(Message::Response(resp)) => match resp.outcome {
                    Outcome::Ok { queue_ns, occupancy, flush, checksum, .. } => {
                        samples.push(Sample {
                            rtt_ns: t0.elapsed().as_nanos() as u64,
                            queue_ns,
                            occupancy,
                            flush,
                            checksum,
                            id: resp.id,
                        });
                    }
                    Outcome::Err { .. } => errors += 1,
                },
                _ => break,
            }
        }
        return Ok(ConnResult { samples, sent, errors });
    }

    // Open-loop: the reader owns the original stream, the sender a
    // clone. Send instants are shared through a map keyed by request id
    // (responses may interleave across batches).
    let mut wstream = stream.try_clone().map_err(sock)?;
    let pending: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let want = share.len();
    let sent = AtomicU64::new(0);
    let (samples, errors) = std::thread::scope(|scope| {
        let (pending_ref, sent_ref) = (&pending, &sent);
        let sender = scope.spawn(move || -> Result<(), ServeError> {
            let mut rng = StdRng::seed_from_u64(seed);
            let burst = match arrival {
                Arrival::Bursty { burst, .. } => burst,
                _ => 1,
            };
            // Bursts arrive on the exponential clock; spacing them at
            // rate/burst keeps the aggregate request rate at `rate`.
            let burst_rate = rate_share / burst as f64;
            for chunk in share.chunks(burst) {
                let u: f64 = rng.gen();
                let gap = -(1.0 - u).ln() / burst_rate;
                std::thread::sleep(Duration::from_secs_f64(gap.min(0.25)));
                for (id, req) in chunk {
                    pending_ref.lock().expect("pending map").insert(*id, Instant::now());
                    proto::write_message(&mut wstream, &wire_request(*id, req, backend))
                        .map_err(|e| ServeError::Socket(Arc::new(e)))?;
                    sent_ref.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        });
        let mut samples = Vec::with_capacity(want);
        let mut errors = 0u64;
        let mut got = 0usize;
        let mut read_err: Option<ServeError> = None;
        while got < want {
            match proto::read_message(&mut stream) {
                Ok(Some(Message::Response(resp))) => {
                    got += 1;
                    let sent_at = pending.lock().expect("pending map").remove(&resp.id);
                    match resp.outcome {
                        Outcome::Ok { queue_ns, occupancy, flush, checksum, .. } => {
                            let rtt_ns =
                                sent_at.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(queue_ns);
                            samples.push(Sample {
                                rtt_ns,
                                queue_ns,
                                occupancy,
                                flush,
                                checksum,
                                id: resp.id,
                            });
                        }
                        Outcome::Err { .. } => errors += 1,
                    }
                }
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    read_err = Some(e.into());
                    break;
                }
            }
        }
        let send_result = sender.join().expect("loadgen sender thread");
        (send_result.and(read_err.map_or(Ok(()), Err)).map(|_| samples), errors)
    });
    samples.map(|samples| ConnResult { samples, sent: sent.load(Ordering::Relaxed), errors })
}

/// Execute every request solo, in-process, and checksum the results —
/// the oracle the socket path is compared against. Memoized by the
/// request's full identity `(family, n, dtype, payload)`; plans are
/// cached by signature like the server does.
fn oracle_checksums(mix: &[Request], reg: &'static Registration, seed: u64) -> Vec<u64> {
    let fw = Framework::flow();
    let cache = PlanCache::with_shards(64, 4);
    let mut memo: HashMap<Request, u64> = HashMap::new();
    let mut pools_f64: HashMap<(crate::workload::Family, usize), laab_expr::eval::Env<f64>> =
        HashMap::new();
    let mut pools_f32: HashMap<(crate::workload::Family, usize), laab_expr::eval::Env<f32>> =
        HashMap::new();
    mix.iter()
        .map(|req| {
            if let Some(&c) = memo.get(req) {
                return c;
            }
            let c = match req.dtype {
                Dtype::F64 => {
                    let pool = pools_f64
                        .entry((req.family, req.n))
                        .or_insert_with(|| req.family.env::<f64>(req.n, seed));
                    oracle_one::<f64>(req, pool, reg, &fw, &cache, seed)
                }
                Dtype::F32 => {
                    let pool = pools_f32
                        .entry((req.family, req.n))
                        .or_insert_with(|| req.family.env::<f32>(req.n, seed));
                    oracle_one::<f32>(req, pool, reg, &fw, &cache, seed)
                }
            };
            memo.insert(*req, c);
            c
        })
        .collect()
}

fn oracle_one<T: BackendScalar>(
    req: &Request,
    pool: &laab_expr::eval::Env<T>,
    reg: &'static Registration,
    fw: &Framework,
    cache: &PlanCache,
    seed: u64,
) -> u64 {
    let (plan, _) = cache.get_or_compile(req.signature(reg.id()), || {
        Plan::compile_with_varying(
            fw,
            &req.family.expr(req.n),
            &req.family.ctx(req.n),
            reg,
            req.family.varying_operands(),
        )
    });
    let results = if req.family.payload_operands().is_empty() {
        plan.execute::<T>(pool)
    } else {
        plan.execute::<T>(&req.env_from_pool(pool, seed))
    };
    proto::result_checksum(&results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_specs_round_trip() {
        for spec in ["closed", "poisson:2000", "bursty:1500x8"] {
            assert_eq!(Arrival::parse(spec).unwrap().display(), spec);
        }
        for bad in [
            "",
            "poisson:",
            "poisson:-3",
            "poisson:nan?",
            "bursty:100",
            "bursty:0x4",
            "bursty:100x0",
            "open",
        ] {
            assert!(Arrival::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn oracle_is_deterministic_and_payload_sensitive() {
        let reg = resolve_backends(&["seed".to_string()]).unwrap()[0];
        let mix = synthetic_mix(24, 16, 7, 5, None);
        let a = oracle_checksums(&mix, reg, 7);
        let b = oracle_checksums(&mix, reg, 7);
        assert_eq!(a, b, "same stream, same seed, same checksums");
        // Chain requests carry a per-request payload vector, so two
        // requests sharing a signature still get distinct checksums.
        let mk = |payload| Request {
            family: crate::workload::Family::Chain,
            n: 16,
            dtype: Dtype::F64,
            payload,
        };
        let pair = oracle_checksums(&[mk(1), mk(2)], reg, 7);
        assert_ne!(pair[0], pair[1]);
    }

    #[test]
    fn schema_is_registered_in_laab_core() {
        assert_eq!(LOADGEN_REPORT_SCHEMA, laab_core::bench_registry::LOADGEN_SCHEMA);
        let spec = laab_core::bench_registry::find("loadgen").expect("registered");
        assert_eq!(spec.schema, LOADGEN_REPORT_SCHEMA);
    }
}
