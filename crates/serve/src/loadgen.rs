//! The standalone load generator: drives a running [`Server`](crate::Server)
//! over its socket and measures latency *from the client side*.
//!
//! Where `laab serve` reports what the serving loop saw, `laab loadgen`
//! reports what a caller would see: round-trip time over the wire,
//! including framing, the admission queue's deadline-or-occupancy wait,
//! and the response's journey back. It replays the same deterministic
//! [`synthetic_mix`] stream the in-process benchmark uses, under three
//! swept arrival processes:
//!
//! - **closed-loop** — each connection keeps exactly one request in
//!   flight; throughput is latency-bound.
//! - **open-loop Poisson** — requests arrive on an exponential clock at
//!   a configured rate regardless of completions; queueing delay shows
//!   up honestly instead of being absorbed by back-pressure.
//! - **bursty** — Poisson-spaced *bursts* of back-to-back requests, the
//!   adversarial case for a deadline-flushed admission window.
//!
//! Because the stream, the operand pools, and the payload draws are all
//! seeded, the generator can also compute each request's expected result
//! locally and compare it to the server's response
//! [checksum](crate::proto::result_checksum) — a bitwise end-to-end
//! check that the network path executes the *same arithmetic* as the
//! in-process loop (exact for backends whose batched execution is a
//! per-item loop, e.g. `seed`/`reference`; disable with
//! [`LoadgenConfig::verify`] for backends with stacked batched kernels).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use laab_backend::{BackendScalar, Dtype, Registration};
use laab_framework::Framework;
use laab_stats::Samples;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

use crate::bench::{resolve_backends, ServeError};
use crate::cache::PlanCache;
use crate::plan::Plan;
use crate::proto::{self, Message, Outcome, RequestMsg};
use crate::server::{connect, Listen};
use crate::workload::{synthetic_mix, Request};
use crate::FlushKind;

/// Schema tag embedded in every [`LoadgenReport`]. `laab-core`'s bench
/// registry mirrors this constant; a test holds the pair equal.
///
/// v3 adds trace replay: `replay:<file>` arrivals re-play recorded
/// inter-arrival gaps (one µs value per line, e.g. a server's
/// `--record-arrivals` output), and the report carries the source trace
/// (`replay_source`) plus per-run gap percentiles. (v2 added per-run
/// rejection classes (`busy`/`expired`/`failed`), retry counts,
/// pressure-flush tallies, and the offered-vs-goodput rate pair, plus
/// their report-level totals.)
pub const LOADGEN_REPORT_SCHEMA: &str = "laab-loadgen-v3";

/// How long a client read blocks before the request is presumed lost
/// (a dropped frame, a reaped connection) and retried or abandoned —
/// generous next to any legitimate batch deadline + execution time.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_millis(400);

/// Backoff floor when the server's `retry_after_us` hint is zero or
/// missing (a timed-out request has no hint at all).
const RETRY_FLOOR_US: u64 = 200;

/// Backoff ceiling: capped exponential, so a long retry chain never
/// sleeps more than this per attempt (before jitter).
const RETRY_CAP_US: u64 = 20_000;

/// An arrival process for one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// One request in flight per connection; the next departs when the
    /// response lands.
    Closed,
    /// Open-loop Poisson arrivals at `rate` requests/second (split
    /// evenly across connections), independent of completions.
    OpenPoisson {
        /// Aggregate arrival rate, requests per second.
        rate: f64,
    },
    /// Poisson-spaced bursts: `burst` requests back-to-back, bursts
    /// timed so the aggregate rate is still `rate`.
    Bursty {
        /// Aggregate arrival rate, requests per second.
        rate: f64,
        /// Requests per burst.
        burst: usize,
    },
    /// Replay recorded inter-arrival gaps from a trace file (one
    /// microsecond value per line, `#` comments skipped — the format a
    /// server's `--record-arrivals` writes). The aggregate arrival
    /// process is reproduced across connections by pacing every request
    /// to its absolute offset in the trace; a trace shorter than the
    /// stream wraps around.
    Replay {
        /// Path of the gap trace.
        file: String,
    },
}

impl Arrival {
    /// Parse a CLI spec: `closed`, `poisson:<rate>`,
    /// `bursty:<rate>x<burst>`, or `replay:<file>`.
    pub fn parse(spec: &str) -> Result<Arrival, ServeError> {
        let bad = || ServeError::BadArrival(spec.to_string());
        if spec == "closed" {
            return Ok(Arrival::Closed);
        }
        if let Some(rate) = spec.strip_prefix("poisson:") {
            let rate: f64 = rate.parse().map_err(|_| bad())?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(bad());
            }
            return Ok(Arrival::OpenPoisson { rate });
        }
        if let Some(rest) = spec.strip_prefix("bursty:") {
            let (rate, burst) = rest.split_once('x').ok_or_else(bad)?;
            let rate: f64 = rate.parse().map_err(|_| bad())?;
            let burst: usize = burst.parse().map_err(|_| bad())?;
            if !rate.is_finite() || rate <= 0.0 || burst == 0 {
                return Err(bad());
            }
            return Ok(Arrival::Bursty { rate, burst });
        }
        if let Some(file) = spec.strip_prefix("replay:") {
            if file.is_empty() {
                return Err(bad());
            }
            return Ok(Arrival::Replay { file: file.to_string() });
        }
        Err(bad())
    }

    /// The canonical spec spelling ([`parse`](Self::parse) inverts it).
    pub fn display(&self) -> String {
        match self {
            Arrival::Closed => "closed".to_string(),
            Arrival::OpenPoisson { rate } => format!("poisson:{rate}"),
            Arrival::Bursty { rate, burst } => format!("bursty:{rate}x{burst}"),
            Arrival::Replay { file } => format!("replay:{file}"),
        }
    }

    fn rate(&self) -> f64 {
        match self {
            Arrival::Closed | Arrival::Replay { .. } => 0.0,
            Arrival::OpenPoisson { rate } | Arrival::Bursty { rate, .. } => *rate,
        }
    }
}

/// Load a replay trace: one inter-arrival gap in microseconds per line,
/// blank lines and `#` comments skipped. Rejects an unreadable file, an
/// unparsable line, and an empty trace with a CLI-grade
/// [`ServeError::BadArrival`] naming the problem.
fn load_gaps(file: &str) -> Result<Vec<f64>, ServeError> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| ServeError::BadArrival(format!("replay:{file} (unreadable: {e})")))?;
    let mut gaps = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let gap: f64 = line.parse().map_err(|_| {
            ServeError::BadArrival(format!("replay:{file} (line {}: `{line}`)", ln + 1))
        })?;
        if !gap.is_finite() || gap < 0.0 {
            return Err(ServeError::BadArrival(format!(
                "replay:{file} (line {}: negative or non-finite gap)",
                ln + 1
            )));
        }
        gaps.push(gap);
    }
    if gaps.is_empty() {
        return Err(ServeError::BadArrival(format!("replay:{file} (empty trace)")));
    }
    Ok(gaps)
}

/// What to drive at the server and how hard.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address spec (`unix:<path>` or `tcp:<host:port>`).
    pub addr: String,
    /// Requests per arrival-process run.
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Base operand size of the request stream.
    pub n: usize,
    /// Stream/pool seed. **Must match the server's `--seed`** for the
    /// bitwise verification to be meaningful (the payload draws hang off
    /// it on both sides).
    pub seed: u64,
    /// Every `churn_every`-th request changes signature (0 disables).
    pub churn_every: usize,
    /// Pin the stream to one precision (`None` = mixed).
    pub dtype: Option<Dtype>,
    /// Backend name every request asks the server to dispatch to.
    pub backend: String,
    /// Arrival processes to sweep, one run each, in order.
    pub arrivals: Vec<Arrival>,
    /// Per-request deadline stamped into every wire frame, microseconds
    /// (0 = none). Requests that overstay it come back `Expired`.
    pub deadline_us: u64,
    /// Retry budget per request for `Busy` rejections and presumed-lost
    /// (timed-out) sends: capped exponential backoff + seeded jitter,
    /// honoring the server's `retry_after_us` hint. 0 disables retries.
    pub max_retries: u32,
    /// Compute each request's expected checksum locally and count
    /// mismatches. Exact only for backends whose batched execution is
    /// per-item (`seed`, `reference`). Only completed (`Ok`) responses
    /// are verified — `Busy`/`Expired`/`Failed` rejections are reported
    /// in their own classes, never as mismatches.
    pub verify: bool,
    /// Send a [`Message::Shutdown`] after the last run, so the server
    /// exits and (for unix sockets) removes its socket file.
    pub shutdown: bool,
    /// `true` for the CI smoke protocol (recorded in the report).
    pub smoke: bool,
}

impl LoadgenConfig {
    /// The CI smoke protocol: a small stream, all three arrival
    /// processes, bitwise verification on, shutdown at the end.
    pub fn smoke(addr: &str) -> Self {
        LoadgenConfig {
            addr: addr.to_string(),
            requests: 96,
            connections: 2,
            n: 24,
            // Matches `ServeConfig::smoke()` — the server's operand
            // pools and payload draws hang off *its* seed, so the
            // bitwise oracle only lines up when the two agree.
            seed: 0x1AAB,
            churn_every: 7,
            dtype: None,
            backend: "seed".to_string(),
            arrivals: vec![
                Arrival::Closed,
                Arrival::OpenPoisson { rate: 2000.0 },
                Arrival::Bursty { rate: 2000.0, burst: 8 },
            ],
            deadline_us: 0,
            max_retries: 3,
            verify: true,
            shutdown: true,
            smoke: true,
        }
    }
}

/// One arrival-process run's client-side measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ArrivalRun {
    /// The arrival spec ([`Arrival::display`]).
    pub arrival: String,
    /// Aggregate arrival rate (0 for closed-loop).
    pub rate: f64,
    /// Requests sent over the wire, retries included.
    pub sent: u64,
    /// `Ok` responses received.
    pub completed: u64,
    /// Error responses received, plus requests abandoned as lost after
    /// the retry budget (a dropped frame that never came back).
    pub errors: u64,
    /// Requests that ended `Busy` after exhausting the retry budget.
    pub busy: u64,
    /// Requests answered `Expired` (their deadline passed server-side).
    pub expired: u64,
    /// Requests answered `Failed` (server-side execution panic or a
    /// quarantined signature).
    pub failed: u64,
    /// Re-sends performed (`Busy` backoff + presumed-lost timeouts).
    pub retries: u64,
    /// Client-observed round-trip p50, microseconds.
    pub rtt_p50_us: f64,
    /// Client-observed round-trip p99, microseconds.
    pub rtt_p99_us: f64,
    /// Client-observed round-trip mean, microseconds.
    pub rtt_mean_us: f64,
    /// Server-reported queue delay p50, microseconds.
    pub queue_p50_us: f64,
    /// Server-reported queue delay p99, microseconds.
    pub queue_p99_us: f64,
    /// Mean batch occupancy over `Ok` responses.
    pub occupancy_mean: f64,
    /// Responses whose batch flushed on occupancy.
    pub occupancy_flushes: u64,
    /// Responses whose batch flushed on deadline.
    pub deadline_flushes: u64,
    /// Responses whose batch flushed on drain.
    pub drain_flushes: u64,
    /// Responses whose batch flushed on backlog pressure.
    pub pressure_flushes: u64,
    /// Median inter-arrival gap of the replayed trace, µs (`0.0` for
    /// synthetic arrival processes).
    pub gap_p50_us: f64,
    /// 99th-percentile gap of the replayed trace, µs (`0.0` likewise).
    pub gap_p99_us: f64,
    /// Mean gap of the replayed trace, µs (`0.0` likewise).
    pub gap_mean_us: f64,
    /// Completed responses whose checksum differed from the local
    /// oracle (rejections are never counted here).
    pub checksum_mismatches: u64,
    /// Wall-clock of the run, milliseconds.
    pub elapsed_ms: f64,
    /// Completed responses per wall-clock second.
    pub throughput_rps: f64,
    /// Wire sends (retries included) per wall-clock second — the load
    /// actually offered to the server.
    pub offered_rps: f64,
    /// Completed *and verified-clean* responses per wall-clock second —
    /// what a caller actually got out of the run.
    pub goodput_rps: f64,
}

/// The client-side report `laab loadgen` emits (schema
/// [`LOADGEN_REPORT_SCHEMA`]).
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Schema tag.
    pub schema: String,
    /// Server address driven (canonical form).
    pub addr: String,
    /// Backend requested of the server.
    pub backend: String,
    /// Requests per run.
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Base operand size.
    pub n: usize,
    /// Stream seed.
    pub seed: u64,
    /// Whether bitwise verification ran.
    pub verified: bool,
    /// Whether this was the smoke protocol.
    pub smoke: bool,
    /// One entry per swept arrival process, in run order.
    pub runs: Vec<ArrivalRun>,
    /// Source file of the first `replay:<file>` arrival in the sweep
    /// (empty when the sweep was fully synthetic).
    pub replay_source: String,
    /// Total checksum mismatches across all runs (0 = the socket path is
    /// bitwise identical to the in-process oracle).
    pub checksum_mismatches: u64,
    /// Total terminal `Busy` rejections across all runs.
    pub busy_total: u64,
    /// Total `Expired` responses across all runs.
    pub expired_total: u64,
    /// Total `Failed` responses across all runs.
    pub failed_total: u64,
    /// Total re-sends across all runs.
    pub retries_total: u64,
}

impl LoadgenReport {
    /// Pretty-printed JSON (the `BENCH_loadgen.json` artifact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("LoadgenReport serializes infallibly")
    }
}

/// One decoded `Ok` response with its client-side round trip.
struct Sample {
    rtt_ns: u64,
    queue_ns: u64,
    occupancy: u32,
    flush: FlushKind,
    checksum: u64,
    id: u64,
}

#[derive(Default)]
struct ConnResult {
    samples: Vec<Sample>,
    sent: u64,
    errors: u64,
    busy: u64,
    expired: u64,
    failed: u64,
    retries: u64,
}

/// How one request's attempt chain ended (the `Ok` case carries its
/// sample; `Busy` here means the retry budget ran out).
enum Terminal {
    Done(Sample),
    Error,
    Busy,
    Expired,
    Failed,
    /// No response within the timeout and no retries left — the
    /// request is presumed lost (counted under `errors`).
    Lost,
}

impl ConnResult {
    fn settle(&mut self, terminal: Terminal) {
        match terminal {
            Terminal::Done(s) => self.samples.push(s),
            Terminal::Error | Terminal::Lost => self.errors += 1,
            Terminal::Busy => self.busy += 1,
            Terminal::Expired => self.expired += 1,
            Terminal::Failed => self.failed += 1,
        }
    }
}

/// Capped exponential backoff with seeded jitter, honoring the
/// server's hint: `min(max(hint, floor) · 2^attempt, cap) + jitter`.
fn backoff(retry_after_us: u64, attempt: u32, rng: &mut StdRng) -> Duration {
    let base = retry_after_us.max(RETRY_FLOOR_US).saturating_mul(1 << attempt.min(6));
    let capped = base.min(RETRY_CAP_US);
    let jitter = rng.gen_range(0..(capped as usize / 4 + 1)) as u64;
    Duration::from_micros(capped + jitter)
}

/// `true` when a frame read failed only because the socket's read
/// timeout elapsed (unix reports `WouldBlock`, TCP `TimedOut`).
fn is_read_timeout(e: &proto::FrameError) -> bool {
    matches!(e, proto::FrameError::Io(io) if matches!(
        io.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ))
}

/// Drive the server at `cfg.addr` through every configured arrival
/// process and assemble the client-side report.
///
/// # Errors
/// [`ServeError::BadListen`]/[`ServeError::Connect`] for an unreachable
/// address, [`ServeError::Socket`]/[`ServeError::Frame`] for transport
/// failures mid-run, plus config rejections ([`ServeError::UnknownBackend`]
/// when `verify` needs a backend this binary does not link).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    let addr = Listen::parse(&cfg.addr)?;
    if cfg.arrivals.is_empty() {
        return Err(ServeError::BadArrival("no arrival processes configured".to_string()));
    }
    let requests = cfg.requests.max(1);
    let connections = cfg.connections.clamp(1, requests);
    let mix = synthetic_mix(requests, cfg.n, cfg.seed, cfg.churn_every, cfg.dtype);
    let expected: Vec<u64> = if cfg.verify {
        let reg = resolve_backends(std::slice::from_ref(&cfg.backend))?[0];
        oracle_checksums(&mix, reg, cfg.seed)
    } else {
        Vec::new()
    };

    let mut runs = Vec::with_capacity(cfg.arrivals.len());
    let (mut total_mismatches, mut busy_total, mut expired_total) = (0u64, 0u64, 0u64);
    let (mut failed_total, mut retries_total) = (0u64, 0u64);
    for arrival in &cfg.arrivals {
        let run = drive_once(&addr, cfg, &mix, arrival, &expected, connections)?;
        total_mismatches += run.checksum_mismatches;
        busy_total += run.busy;
        expired_total += run.expired;
        failed_total += run.failed;
        retries_total += run.retries;
        runs.push(run);
    }

    if cfg.shutdown {
        shutdown_server(&addr)?;
    }

    let replay_source = cfg
        .arrivals
        .iter()
        .find_map(|a| match a {
            Arrival::Replay { file } => Some(file.clone()),
            _ => None,
        })
        .unwrap_or_default();
    Ok(LoadgenReport {
        schema: LOADGEN_REPORT_SCHEMA.to_string(),
        addr: addr.display(),
        backend: cfg.backend.clone(),
        requests,
        connections,
        n: cfg.n,
        seed: cfg.seed,
        verified: cfg.verify,
        smoke: cfg.smoke,
        runs,
        replay_source,
        checksum_mismatches: total_mismatches,
        busy_total,
        expired_total,
        failed_total,
        retries_total,
    })
}

/// Send an in-band shutdown and wait for the ack.
fn shutdown_server(addr: &Listen) -> Result<(), ServeError> {
    let mut stream = connect(addr)?;
    proto::write_message(&mut stream, &Message::Shutdown)
        .map_err(|e| ServeError::Socket(Arc::new(e)))?;
    loop {
        match proto::read_message(&mut stream)? {
            Some(Message::ShutdownAck) | None => return Ok(()),
            Some(_) => continue,
        }
    }
}

/// One arrival process against one fresh set of connections.
fn drive_once(
    addr: &Listen,
    cfg: &LoadgenConfig,
    mix: &[Request],
    arrival: &Arrival,
    expected: &[u64],
    connections: usize,
) -> Result<ArrivalRun, ServeError> {
    // Round-robin the stream across connections; ids index into `mix`,
    // so the oracle lookup on the way back is O(1).
    let mut shares: Vec<Vec<(u64, Request)>> = vec![Vec::new(); connections];
    for (i, req) in mix.iter().enumerate() {
        shares[i % connections].push((i as u64, *req));
    }
    // Replay: turn the recorded gaps into absolute per-request offsets
    // (request 0 at t=0, wrapping a short trace), so every connection
    // paces its share against the same aggregate clock and the combined
    // arrival process is the trace itself.
    let (gaps_us, offsets) = match arrival {
        Arrival::Replay { file } => {
            let gaps = load_gaps(file)?;
            let mut offsets = Vec::with_capacity(mix.len());
            let mut at = 0.0f64;
            for i in 0..mix.len() {
                offsets.push(Duration::from_secs_f64(at / 1e6));
                at += gaps[i % gaps.len()];
            }
            (gaps, offsets)
        }
        _ => (Vec::new(), Vec::new()),
    };
    let offsets = (!offsets.is_empty()).then_some(offsets.as_slice());
    let started = Instant::now();
    let transport_err: Mutex<Option<ServeError>> = Mutex::new(None);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for (c, share) in shares.into_iter().enumerate() {
            let (transport_err, backend) = (&transport_err, cfg.backend.as_str());
            let rate_share = arrival.rate() / connections as f64;
            let seed = cfg.seed ^ 0x10AD_0000 ^ (c as u64);
            let (deadline_us, max_retries) = (cfg.deadline_us, cfg.max_retries);
            handles.push(scope.spawn(move || {
                let wire = WireParams { backend, deadline_us, max_retries };
                match drive_connection(addr, share, &wire, arrival, rate_share, seed, offsets) {
                    Ok(r) => r,
                    Err(e) => {
                        transport_err.lock().expect("loadgen error slot").get_or_insert(e);
                        ConnResult::default()
                    }
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("loadgen connection thread")).collect()
    });
    if let Some(e) = transport_err.into_inner().expect("loadgen error slot") {
        return Err(e);
    }
    let elapsed = started.elapsed();

    let mut rtt_us = Vec::new();
    let mut queue_us = Vec::new();
    let (mut sent, mut errors, mut occ_sum, mut mismatches) = (0u64, 0u64, 0u64, 0u64);
    let (mut occ_fl, mut dl_fl, mut dr_fl, mut pr_fl) = (0u64, 0u64, 0u64, 0u64);
    let (mut busy, mut expired, mut failed, mut retries) = (0u64, 0u64, 0u64, 0u64);
    let mut completed = 0u64;
    for r in &results {
        sent += r.sent;
        errors += r.errors;
        busy += r.busy;
        expired += r.expired;
        failed += r.failed;
        retries += r.retries;
        for s in &r.samples {
            completed += 1;
            rtt_us.push(s.rtt_ns as f64 / 1_000.0);
            queue_us.push(s.queue_ns as f64 / 1_000.0);
            occ_sum += s.occupancy as u64;
            match s.flush {
                FlushKind::Occupancy => occ_fl += 1,
                FlushKind::Deadline => dl_fl += 1,
                FlushKind::Drain => dr_fl += 1,
                FlushKind::Pressure => pr_fl += 1,
            }
            if !expected.is_empty() && expected[s.id as usize] != s.checksum {
                mismatches += 1;
            }
        }
    }
    // `Samples` rejects an empty set; a run where every request errored
    // still deserves a report row (of zeros).
    let summarize = |v: Vec<f64>| -> (f64, f64, f64) {
        if v.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let s = Samples::new(v);
        (s.median(), s.quantile(0.99), s.mean())
    };
    let (rtt_p50, rtt_p99, rtt_mean) = summarize(rtt_us);
    let (queue_p50, queue_p99, _) = summarize(queue_us);
    let (gap_p50, gap_p99, gap_mean) = summarize(gaps_us);
    let secs = elapsed.as_secs_f64();
    let per_sec = |count: u64| if secs > 0.0 { count as f64 / secs } else { 0.0 };
    Ok(ArrivalRun {
        arrival: arrival.display(),
        rate: arrival.rate(),
        sent,
        completed,
        errors,
        busy,
        expired,
        failed,
        retries,
        rtt_p50_us: rtt_p50,
        rtt_p99_us: rtt_p99,
        rtt_mean_us: rtt_mean,
        queue_p50_us: queue_p50,
        queue_p99_us: queue_p99,
        occupancy_mean: if completed == 0 { 0.0 } else { occ_sum as f64 / completed as f64 },
        occupancy_flushes: occ_fl,
        deadline_flushes: dl_fl,
        drain_flushes: dr_fl,
        pressure_flushes: pr_fl,
        gap_p50_us: gap_p50,
        gap_p99_us: gap_p99,
        gap_mean_us: gap_mean,
        checksum_mismatches: mismatches,
        elapsed_ms: secs * 1_000.0,
        throughput_rps: per_sec(completed),
        offered_rps: per_sec(sent),
        goodput_rps: per_sec(completed.saturating_sub(mismatches)),
    })
}

/// Per-request wire parameters shared by every send on a connection.
struct WireParams<'a> {
    backend: &'a str,
    deadline_us: u64,
    max_retries: u32,
}

fn wire_request(id: u64, req: &Request, wire: &WireParams<'_>) -> Message {
    Message::Request(RequestMsg {
        id,
        family: req.family.id().to_string(),
        n: req.n as u64,
        dtype: req.dtype,
        backend: wire.backend.to_string(),
        payload: req.payload,
        deadline_us: wire.deadline_us,
    })
}

/// How one blocking read attempt ended (closed loop).
enum ReadOut {
    Got(Outcome),
    Eof,
    TimedOut,
}

/// One connection's share of a run. Closed-loop is a synchronous
/// request/response loop; the open-loop shapes split into a pacing
/// sender and a collecting reader so queueing at the server cannot
/// back-pressure the arrival clock. Both shapes run under a read
/// timeout and retry `Busy` rejections and presumed-lost requests with
/// capped exponential backoff, up to the configured budget. For a
/// replay run, `offsets[i]` is stream request `i`'s absolute arrival
/// offset from the run start; the sender paces against it instead of an
/// exponential clock.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: &Listen,
    share: Vec<(u64, Request)>,
    wire: &WireParams<'_>,
    arrival: &Arrival,
    rate_share: f64,
    seed: u64,
    offsets: Option<&[Duration]>,
) -> Result<ConnResult, ServeError> {
    let mut stream = connect(addr)?;
    let sock = |e: std::io::Error| ServeError::Socket(Arc::new(e));
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).map_err(sock)?;
    if share.is_empty() {
        return Ok(ConnResult::default());
    }

    if matches!(*arrival, Arrival::Closed) {
        let mut out = ConnResult::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0FF);
        for (id, req) in &share {
            let mut attempt = 0u32;
            let mut eof = false;
            let terminal = loop {
                let t0 = Instant::now();
                proto::write_message(&mut stream, &wire_request(*id, req, wire)).map_err(sock)?;
                out.sent += 1;
                // Read to *this* id's response; a stale duplicate from
                // an earlier timed-out attempt is skipped by id.
                let read = loop {
                    match proto::read_message(&mut stream) {
                        Ok(Some(Message::Response(resp))) if resp.id == *id => {
                            break ReadOut::Got(resp.outcome)
                        }
                        Ok(Some(_)) => continue,
                        Ok(None) => break ReadOut::Eof,
                        Err(ref e) if is_read_timeout(e) => break ReadOut::TimedOut,
                        Err(e) => return Err(e.into()),
                    }
                };
                match read {
                    ReadOut::Got(Outcome::Ok { queue_ns, occupancy, flush, checksum, .. }) => {
                        break Terminal::Done(Sample {
                            rtt_ns: t0.elapsed().as_nanos() as u64,
                            queue_ns,
                            occupancy,
                            flush,
                            checksum,
                            id: *id,
                        });
                    }
                    ReadOut::Got(Outcome::Err { .. }) => break Terminal::Error,
                    ReadOut::Got(Outcome::Expired { .. }) => break Terminal::Expired,
                    ReadOut::Got(Outcome::Failed { .. }) => break Terminal::Failed,
                    ReadOut::Got(Outcome::Busy { retry_after_us }) => {
                        if attempt >= wire.max_retries {
                            break Terminal::Busy;
                        }
                        attempt += 1;
                        out.retries += 1;
                        std::thread::sleep(backoff(retry_after_us, attempt, &mut rng));
                    }
                    ReadOut::TimedOut => {
                        if attempt >= wire.max_retries {
                            break Terminal::Lost;
                        }
                        attempt += 1;
                        out.retries += 1;
                    }
                    ReadOut::Eof => {
                        eof = true;
                        break Terminal::Lost;
                    }
                }
            };
            out.settle(terminal);
            if eof {
                break;
            }
        }
        return Ok(out);
    }

    // Open-loop: the reader owns the original stream; sends go through
    // a mutex-shared clone so the round-0 pacing sender and the
    // reader's retries interleave safely. Send instants live in a map
    // keyed by request id (responses interleave across batches); an id
    // missing from the map marks a stale duplicate response.
    let by_id: HashMap<u64, Request> = share.iter().copied().collect();
    let wstream = Mutex::new(stream.try_clone().map_err(sock)?);
    let pending: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let sent = AtomicU64::new(0);
    let sender_done = AtomicBool::new(false);
    let mut out = ConnResult::default();
    let mut transport: Option<ServeError> = None;

    std::thread::scope(|scope| {
        let (pending_ref, sent_ref) = (&pending, &sent);
        let (wstream_ref, done_ref) = (&wstream, &sender_done);
        let sender = scope.spawn(move || -> Result<(), ServeError> {
            let mut rng = StdRng::seed_from_u64(seed);
            let burst = match arrival {
                Arrival::Bursty { burst, .. } => *burst,
                _ => 1,
            };
            // Bursts arrive on the exponential clock; spacing them at
            // rate/burst keeps the aggregate request rate at `rate`.
            let burst_rate = rate_share / burst as f64;
            let send_one = |id: u64, req: &Request| -> Result<(), ServeError> {
                pending_ref.lock().expect("pending map").insert(id, Instant::now());
                let mut w = wstream_ref.lock().expect("loadgen write stream");
                proto::write_message(&mut *w, &wire_request(id, req, wire))
                    .map_err(|e| ServeError::Socket(Arc::new(e)))?;
                sent_ref.fetch_add(1, Ordering::Relaxed);
                Ok(())
            };
            let result = (|| {
                if let Some(offsets) = offsets {
                    // Replay: each request departs at its recorded
                    // absolute offset; connections sharing the run's t0
                    // jointly reproduce the trace's aggregate process.
                    let t0 = Instant::now();
                    for (id, req) in &share {
                        let target = t0 + offsets[*id as usize];
                        let now = Instant::now();
                        if target > now {
                            std::thread::sleep(target - now);
                        }
                        send_one(*id, req)?;
                    }
                    return Ok(());
                }
                for chunk in share.chunks(burst) {
                    let u: f64 = rng.gen();
                    let gap = -(1.0 - u).ln() / burst_rate;
                    std::thread::sleep(Duration::from_secs_f64(gap.min(0.25)));
                    for (id, req) in chunk {
                        send_one(*id, req)?;
                    }
                }
                Ok(())
            })();
            done_ref.store(true, Ordering::SeqCst);
            result
        });

        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0FF);
        let mut attempts: HashMap<u64, u32> = HashMap::new();
        'reader: loop {
            if sender_done.load(Ordering::SeqCst) && pending.lock().expect("pending map").is_empty()
            {
                break;
            }
            match proto::read_message(&mut stream) {
                Ok(Some(Message::Response(resp))) => {
                    let rid = resp.id;
                    let sent_at = pending.lock().expect("pending map").get(&rid).copied();
                    let Some(sent_at) = sent_at else { continue };
                    let remove = || {
                        pending.lock().expect("pending map").remove(&rid);
                    };
                    match resp.outcome {
                        Outcome::Ok { queue_ns, occupancy, flush, checksum, .. } => {
                            remove();
                            out.settle(Terminal::Done(Sample {
                                rtt_ns: sent_at.elapsed().as_nanos() as u64,
                                queue_ns,
                                occupancy,
                                flush,
                                checksum,
                                id: rid,
                            }));
                        }
                        Outcome::Err { .. } => {
                            remove();
                            out.settle(Terminal::Error);
                        }
                        Outcome::Expired { .. } => {
                            remove();
                            out.settle(Terminal::Expired);
                        }
                        Outcome::Failed { .. } => {
                            remove();
                            out.settle(Terminal::Failed);
                        }
                        Outcome::Busy { retry_after_us } => {
                            let attempt = attempts.entry(rid).or_insert(0);
                            if *attempt >= wire.max_retries {
                                remove();
                                out.settle(Terminal::Busy);
                            } else {
                                *attempt += 1;
                                out.retries += 1;
                                std::thread::sleep(backoff(retry_after_us, *attempt, &mut rng));
                                if let Err(e) = resend(&wstream, rid, &by_id, wire, &pending, &sent)
                                {
                                    transport.get_or_insert(e);
                                    break 'reader;
                                }
                            }
                        }
                    }
                }
                Ok(Some(_)) => continue,
                Ok(None) => {
                    // EOF: everything still pending is lost for good.
                    for _ in pending.lock().expect("pending map").drain() {
                        out.settle(Terminal::Lost);
                    }
                    break;
                }
                Err(ref e) if is_read_timeout(e) => {
                    if !sender_done.load(Ordering::SeqCst) {
                        continue;
                    }
                    // Quiet past the timeout with nothing in flight from
                    // the sender: whatever is pending was dropped —
                    // re-send what still has budget, abandon the rest.
                    let ids: Vec<u64> = {
                        let mut v: Vec<u64> =
                            pending.lock().expect("pending map").keys().copied().collect();
                        v.sort_unstable();
                        v
                    };
                    for id in ids {
                        let attempt = attempts.entry(id).or_insert(0);
                        if *attempt >= wire.max_retries {
                            pending.lock().expect("pending map").remove(&id);
                            out.settle(Terminal::Lost);
                        } else {
                            *attempt += 1;
                            out.retries += 1;
                            if let Err(e) = resend(&wstream, id, &by_id, wire, &pending, &sent) {
                                transport.get_or_insert(e);
                                break 'reader;
                            }
                        }
                    }
                }
                Err(e) => {
                    transport.get_or_insert(e.into());
                    break;
                }
            }
        }
        if let Err(e) = sender.join().expect("loadgen sender thread") {
            transport.get_or_insert(e);
        }
    });
    if let Some(e) = transport {
        return Err(e);
    }
    out.sent = sent.load(Ordering::Relaxed);
    Ok(out)
}

/// Re-send one request (open-loop retry path): refresh its pending
/// instant, then write through the shared stream.
fn resend(
    wstream: &Mutex<crate::server::Stream>,
    id: u64,
    by_id: &HashMap<u64, Request>,
    wire: &WireParams<'_>,
    pending: &Mutex<HashMap<u64, Instant>>,
    sent: &AtomicU64,
) -> Result<(), ServeError> {
    let req = by_id[&id];
    pending.lock().expect("pending map").insert(id, Instant::now());
    let mut w = wstream.lock().expect("loadgen write stream");
    proto::write_message(&mut *w, &wire_request(id, &req, wire))
        .map_err(|e| ServeError::Socket(Arc::new(e)))?;
    sent.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Execute every request solo, in-process, and checksum the results —
/// the oracle the socket path is compared against. Memoized by the
/// request's full identity `(family, n, dtype, payload)`; plans are
/// cached by signature like the server does.
fn oracle_checksums(mix: &[Request], reg: &'static Registration, seed: u64) -> Vec<u64> {
    let fw = Framework::flow();
    let cache = PlanCache::with_shards(64, 4);
    let mut memo: HashMap<Request, u64> = HashMap::new();
    let mut pools_f64: HashMap<(crate::workload::Family, usize), laab_expr::eval::Env<f64>> =
        HashMap::new();
    let mut pools_f32: HashMap<(crate::workload::Family, usize), laab_expr::eval::Env<f32>> =
        HashMap::new();
    mix.iter()
        .map(|req| {
            if let Some(&c) = memo.get(req) {
                return c;
            }
            let c = match req.dtype {
                Dtype::F64 => {
                    let pool = pools_f64
                        .entry((req.family, req.n))
                        .or_insert_with(|| req.family.env::<f64>(req.n, seed));
                    oracle_one::<f64>(req, pool, reg, &fw, &cache, seed)
                }
                Dtype::F32 => {
                    let pool = pools_f32
                        .entry((req.family, req.n))
                        .or_insert_with(|| req.family.env::<f32>(req.n, seed));
                    oracle_one::<f32>(req, pool, reg, &fw, &cache, seed)
                }
            };
            memo.insert(*req, c);
            c
        })
        .collect()
}

fn oracle_one<T: BackendScalar>(
    req: &Request,
    pool: &laab_expr::eval::Env<T>,
    reg: &'static Registration,
    fw: &Framework,
    cache: &PlanCache,
    seed: u64,
) -> u64 {
    let (plan, _) = cache.get_or_compile(req.signature(reg.id()), || {
        Plan::compile_with_varying(
            fw,
            &req.family.expr(req.n),
            &req.family.ctx(req.n),
            reg,
            req.family.varying_operands(),
        )
    });
    let results = if req.family.payload_operands().is_empty() {
        plan.execute::<T>(pool)
    } else {
        plan.execute::<T>(&req.env_from_pool(pool, seed))
    };
    proto::result_checksum(&results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_specs_round_trip() {
        for spec in ["closed", "poisson:2000", "bursty:1500x8", "replay:/tmp/trace.txt"] {
            assert_eq!(Arrival::parse(spec).unwrap().display(), spec);
        }
        for bad in [
            "",
            "poisson:",
            "poisson:-3",
            "poisson:nan?",
            "bursty:100",
            "bursty:0x4",
            "bursty:100x0",
            "replay:",
            "open",
        ] {
            assert!(Arrival::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn replay_traces_load_strictly() {
        let dir = std::env::temp_dir();
        let path = dir.join("laab-loadgen-trace-test.txt");
        std::fs::write(&path, "# recorded gaps, us\n120.5\n\n80\n300.25\n").unwrap();
        let gaps = load_gaps(path.to_str().unwrap()).unwrap();
        assert_eq!(gaps, vec![120.5, 80.0, 300.25]);
        std::fs::write(&path, "12\nnot-a-number\n").unwrap();
        assert!(load_gaps(path.to_str().unwrap()).is_err());
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(load_gaps(path.to_str().unwrap()).is_err(), "empty trace is rejected");
        std::fs::write(&path, "-5\n").unwrap();
        assert!(load_gaps(path.to_str().unwrap()).is_err(), "negative gap is rejected");
        let _ = std::fs::remove_file(&path);
        assert!(load_gaps("/no/such/trace.txt").is_err(), "unreadable file is rejected");
    }

    #[test]
    fn oracle_is_deterministic_and_payload_sensitive() {
        let reg = resolve_backends(&["seed".to_string()]).unwrap()[0];
        let mix = synthetic_mix(24, 16, 7, 5, None);
        let a = oracle_checksums(&mix, reg, 7);
        let b = oracle_checksums(&mix, reg, 7);
        assert_eq!(a, b, "same stream, same seed, same checksums");
        // Chain requests carry a per-request payload vector, so two
        // requests sharing a signature still get distinct checksums.
        let mk = |payload| Request {
            family: crate::workload::Family::Chain,
            n: 16,
            dtype: Dtype::F64,
            payload,
        };
        let pair = oracle_checksums(&[mk(1), mk(2)], reg, 7);
        assert_ne!(pair[0], pair[1]);
    }

    #[test]
    fn schema_is_registered_in_laab_core() {
        assert_eq!(LOADGEN_REPORT_SCHEMA, laab_core::bench_registry::LOADGEN_SCHEMA);
        let spec = laab_core::bench_registry::find("loadgen").expect("registered");
        assert_eq!(spec.schema, LOADGEN_REPORT_SCHEMA);
    }
}
