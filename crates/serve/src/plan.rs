//! The compiled plan: optimized graph + schedule, bound to a backend.

use std::sync::OnceLock;
use std::time::Instant;

use laab_backend::{BackendId, BackendScalar, Registration};
use laab_dense::Matrix;
use laab_expr::eval::Env;
use laab_expr::{Context, Expr};
use laab_framework::Framework;
use laab_graph::{
    execute_batched_on, execute_scheduled_on, BatchAnalysis, Graph, PassStats, Schedule,
};
use laab_rewrite::{optimize_egraph, CostModel, EgraphConfig};

use crate::signature::OptLevel;

/// What equality saturation did while compiling one plan — recorded only
/// on [`OptLevel::Egraph`] plans (a Passes plan never enters the e-graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EgraphReport {
    /// Modeled cost of the extracted expression.
    pub extracted_cost: u64,
    /// Modeled cost of the input expression, same units.
    pub original_cost: u64,
    /// Whether extraction chose a different tree than the input.
    pub changed: bool,
    /// Whether saturation tripped a budget and the plan fell back to the
    /// input expression (counted by the serving report as
    /// `saturation_budget_hits`).
    pub budget_hit: bool,
    /// Saturation rounds run.
    pub iterations: usize,
    /// E-nodes live when saturation stopped.
    pub enodes: usize,
}

/// The extraction cost model, calibrated once per process from the
/// measured `BENCH_gemm.json` curves when present (see
/// [`CostModel::load_or_default`]); the built-in anchors otherwise.
fn serve_cost_model() -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(|| CostModel::load_or_default(std::path::Path::new("BENCH_gemm.json")))
}

/// A compiled, reusable execution plan — the `ConcreteFunction` of the
/// `tf.function` analogy.
///
/// Built once per [`Signature`](crate::Signature) by tracing the
/// expression through the framework's graph mode, running the full
/// optimizer pipeline, and precomputing the execution [`Schedule`]
/// (reference counts + workspace layout). The plan is bound to the
/// execution [`Backend`](laab_backend::Backend) it was compiled for —
/// tracing and optimization are backend-independent, but the cache keys
/// plans per backend so an A/B run never cross-hits. [`Plan::execute`]
/// re-runs the identical sweep with fresh operand bindings: a cache hit
/// pays no tracing, no optimization, and no schedule derivation, and its
/// result is bitwise-identical to a cold trace on the same backend.
#[derive(Debug)]
pub struct Plan {
    graph: Graph,
    schedule: Schedule,
    batch: BatchAnalysis,
    build_secs: f64,
    stats: PassStats,
    backend: &'static Registration,
    egraph: Option<EgraphReport>,
}

impl Plan {
    /// Trace `expr` over the shapes in `ctx` through `fw`'s graph mode,
    /// optimize, and precompute the schedule, binding the plan to
    /// `backend`. This is the full cold-trace cost a cache hit amortizes
    /// away. No operand is declared request-varying, so the plan never
    /// stacks (see [`Plan::compile_with_varying`]).
    pub fn compile(
        fw: &Framework,
        expr: &Expr,
        ctx: &Context,
        backend: &'static Registration,
    ) -> Plan {
        Self::compile_with_varying(fw, expr, ctx, backend, &[])
    }

    /// [`Plan::compile`], additionally declaring which operand names vary
    /// request to request. The compile step runs the batch-stacking shape
    /// analysis ([`laab_graph::BatchAnalysis`]) over the optimized graph,
    /// so [`Plan::execute_batched`] can decide stacked-vs-fallback without
    /// any per-batch analysis cost.
    pub fn compile_with_varying(
        fw: &Framework,
        expr: &Expr,
        ctx: &Context,
        backend: &'static Registration,
        varying: &[&str],
    ) -> Plan {
        Self::compile_opt(fw, expr, ctx, backend, varying, OptLevel::Passes)
    }

    /// [`Plan::compile_with_varying`] through an explicit optimizer level.
    ///
    /// At [`OptLevel::Egraph`] the expression first goes through equality
    /// saturation + cost-based extraction ([`laab_rewrite::optimize_egraph`])
    /// so the framework traces the *normalized* form — `BatchAnalysis`
    /// therefore analyzes the extracted expression, and a rewrite that
    /// turns a GEMM chain into GEMV form changes what stacks. A saturation
    /// budget hit falls back to the input expression (the plan still
    /// compiles; [`Plan::egraph_report`] records the hit). The graph
    /// passes then run as usual on either form.
    pub fn compile_opt(
        fw: &Framework,
        expr: &Expr,
        ctx: &Context,
        backend: &'static Registration,
        varying: &[&str],
        opt: OptLevel,
    ) -> Plan {
        let t0 = Instant::now();
        let (expr, egraph) = match opt {
            OptLevel::Passes => (expr.clone(), None),
            OptLevel::Egraph => {
                let cfg = EgraphConfig { cost: *serve_cost_model(), ..Default::default() };
                let r = optimize_egraph(expr, ctx, &cfg);
                let report = EgraphReport {
                    extracted_cost: r.best_cost,
                    original_cost: r.original_cost,
                    changed: r.changed,
                    budget_hit: r.stats.budget_hit,
                    iterations: r.stats.iterations,
                    enodes: r.stats.enodes,
                };
                (r.best, Some(report))
            }
        };
        let function = fw.function_from_expr(&expr, ctx);
        let (graph, _trace_time, stats) = function.into_plan_parts();
        let schedule = Schedule::new(&graph);
        let batch = BatchAnalysis::analyze(&graph, |name| varying.contains(&name));
        Plan {
            build_secs: t0.elapsed().as_secs_f64(),
            graph,
            schedule,
            batch,
            stats,
            backend,
            egraph,
        }
    }

    /// Execute the plan against fresh operand bindings, dispatching every
    /// kernel-backed node through the plan's backend.
    ///
    /// # Panics
    /// When the plan's backend has no entry point for `T` — the serve
    /// harness validates dtype support against the request stream before
    /// any dispatch, so reaching this panic means a caller skipped that
    /// validation.
    pub fn execute<T: BackendScalar>(&self, env: &Env<T>) -> Vec<Matrix<T>> {
        let backend = self.backend.resolve::<T>().unwrap_or_else(|| {
            panic!(
                "backend `{}` has no {} entry point (validate dtype support before dispatch)",
                self.backend.name(),
                T::DTYPE
            )
        });
        // The deferred backend is a whole-plan executor, not a per-node
        // kernel set: route through its tape so ops queue and fuse at
        // flush instead of dispatching node by node.
        if self.backend.name() == laab_deferred::BACKEND_NAME {
            return laab_deferred::execute_plan(&self.graph, &self.schedule, env);
        }
        execute_scheduled_on(&self.graph, &self.schedule, env, backend)
    }

    /// Execute the plan once over a batch of operand environments —
    /// coalesced same-signature requests. When the compile-time analysis
    /// proved the plan RHS-stackable, varying products run as one
    /// multi-RHS execution through the plan's backend
    /// ([`laab_backend::Backend::matmul_batched`]); otherwise each
    /// environment executes sequentially, bitwise-identical to
    /// [`Plan::execute`] per request.
    ///
    /// # Panics
    /// As [`Plan::execute`], plus on an empty batch.
    pub fn execute_batched<T: BackendScalar>(&self, envs: &[&Env<T>]) -> Vec<Vec<Matrix<T>>> {
        let backend = self.backend.resolve::<T>().unwrap_or_else(|| {
            panic!(
                "backend `{}` has no {} entry point (validate dtype support before dispatch)",
                self.backend.name(),
                T::DTYPE
            )
        });
        if self.backend.name() == laab_deferred::BACKEND_NAME && !self.batch.stackable() {
            // Non-stackable batches fall back per request; for the
            // deferred backend that means per-request tapes (with their
            // within-request fusion) rather than per-node dispatches.
            // Stackable batches stay on `execute_batched_on`: the
            // coalesced multi-RHS product reaches the deferred backend's
            // `matmul_batched`, which charges one launch for the whole
            // window — the cross-request granularity of the same fusion.
            return envs
                .iter()
                .map(|env| laab_deferred::execute_plan(&self.graph, &self.schedule, env))
                .collect();
        }
        execute_batched_on(&self.graph, &self.schedule, &self.batch, envs, backend)
    }

    /// Whether the compile-time shape analysis proved batched executions
    /// of this plan can column-stack (`false` means batches take the
    /// bitwise per-request fallback).
    pub fn stackable(&self) -> bool {
        self.batch.stackable()
    }

    /// The compile-time batch-stacking analysis.
    pub fn batch_analysis(&self) -> &BatchAnalysis {
        &self.batch
    }

    /// The backend this plan is bound to.
    pub fn backend(&self) -> BackendId {
        self.backend.id()
    }

    /// The optimized graph (inspection, DOT export).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The precomputed execution schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Wall-clock seconds the compile took (trace + optimize + schedule) —
    /// the per-signature cost the cache amortizes.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// What the optimizer pipeline did during compilation.
    pub fn pass_stats(&self) -> PassStats {
        self.stats
    }

    /// What equality saturation did, for plans compiled at
    /// [`OptLevel::Egraph`]; `None` on Passes-level plans.
    pub fn egraph_report(&self) -> Option<EgraphReport> {
        self.egraph
    }

    /// Peak intermediate workspace one in-flight execution needs, in
    /// bytes, for element type `T` (see
    /// [`Schedule::peak_live_elems`]).
    pub fn workspace_bytes<T: laab_dense::Scalar>(&self) -> usize {
        self.schedule.workspace_bytes::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_backend::registry;
    use laab_dense::gen::OperandGen;
    use laab_expr::var;

    #[test]
    fn plan_matches_function_call_bitwise() {
        let n = 12;
        let fw = Framework::flow();
        let s = var("A").t() * var("B");
        let expr = s.clone().t() * s;
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        let mut g = OperandGen::new(91);
        let env = Env::<f64>::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));

        let cold = fw.function_from_expr(&expr, &ctx).call(&env);
        let plan = Plan::compile(&fw, &expr, &ctx, registry::default_backend());
        // Two executions of the same plan, and the cold trace: all equal,
        // bit for bit (the default backend IS the cold-trace engine).
        assert_eq!(plan.execute(&env), cold);
        assert_eq!(plan.execute(&env), cold);
        assert!(plan.build_secs() > 0.0);
        assert_eq!(plan.backend(), laab_backend::BackendId::ENGINE);
        // CSE fired during compilation: one shared AᵀB.
        assert_eq!(plan.graph().matmul_count(), 2);
        assert!(plan.pass_stats().nodes_deduped >= 1);
    }

    #[test]
    fn per_backend_plans_execute_their_backend() {
        let n = 10;
        let fw = Framework::flow();
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        let mut g = OperandGen::new(17);
        let env = Env::<f64>::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));
        let engine = Plan::compile(&fw, &expr, &ctx, registry::find("engine").unwrap());
        let reference = Plan::compile(&fw, &expr, &ctx, registry::find("reference").unwrap());
        assert_eq!(engine.backend().name(), "engine");
        assert_eq!(reference.backend().name(), "reference");
        let e = engine.execute(&env);
        let r = reference.execute(&env);
        // Same graph, different kernels: tight approx, FMA-level drift.
        assert!(e[0].approx_eq(&r[0], 1e-13));
    }

    #[test]
    #[should_panic(expected = "no f64 entry point")]
    fn unsupported_dtype_panics_with_a_named_backend() {
        static F32_ONLY: laab_backend::Registration = laab_backend::Registration::new(
            "plan-test-f32-only",
            "f32-only backend for the dtype-support panic test",
            Some(&laab_backend::EngineBackend),
            None,
        );
        // Registration not required for Plan use; the registry is about
        // name lookup, and this plan is handed its backend directly.
        let n = 4;
        let fw = Framework::flow();
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        let plan = Plan::compile(&fw, &expr, &ctx, &F32_ONLY);
        let mut g = OperandGen::new(3);
        let env = Env::<f64>::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));
        let _ = plan.execute(&env);
    }

    #[test]
    fn batched_execution_matches_solo_and_respects_varying() {
        let n = 12;
        let fw = Framework::flow();
        let expr = var("H").t() * (var("H") * var("x"));
        let ctx = Context::new().with("H", n, n).with("x", n, 1);
        let plan =
            Plan::compile_with_varying(&fw, &expr, &ctx, registry::default_backend(), &["x"]);
        assert!(plan.stackable(), "chain with varying RHS must stack");
        assert_eq!(plan.batch_analysis().len(), plan.graph().len());

        let mut g = OperandGen::new(5);
        let h = g.matrix::<f64>(n, n);
        let envs: Vec<Env<f64>> = (0..6)
            .map(|i| {
                let mut pg = OperandGen::new(100 + i);
                Env::new().with("H", h.clone()).with("x", pg.matrix(n, 1))
            })
            .collect();
        let refs: Vec<&Env<f64>> = envs.iter().collect();
        let batched = plan.execute_batched(&refs);
        assert_eq!(batched.len(), envs.len());
        for (env, b) in envs.iter().zip(&batched) {
            let solo = plan.execute(env);
            assert!(b[0].approx_eq(&solo[0], 1e-12), "batched drifted from solo");
        }

        // Without a varying declaration the same expression never stacks:
        // batched execution falls back per request, bitwise.
        let plain = Plan::compile(&fw, &expr, &ctx, registry::default_backend());
        assert!(!plain.stackable());
        let fallback = plain.execute_batched(&refs);
        for (env, b) in envs.iter().zip(&fallback) {
            assert_eq!(b, &plain.execute(env));
        }
    }

    #[test]
    fn egraph_opt_normalizes_before_batch_analysis() {
        // The Chain family as the serving loop submits it: (HᵀH)x, with x
        // request-varying. The pass pipeline keeps the association, so the
        // leading HᵀH GEMM survives; the e-graph level extracts Hᵀ(Hx)
        // *before* tracing, so BatchAnalysis sees two stackable GEMVs.
        let n = 32;
        let fw = Framework::flow();
        let expr = (var("H").t() * var("H")) * var("x");
        let ctx = Context::new().with("H", n, n).with("x", n, 1);
        let passes = Plan::compile_opt(
            &fw,
            &expr,
            &ctx,
            registry::default_backend(),
            &["x"],
            OptLevel::Passes,
        );
        let egraph = Plan::compile_opt(
            &fw,
            &expr,
            &ctx,
            registry::default_backend(),
            &["x"],
            OptLevel::Egraph,
        );
        assert!(passes.egraph_report().is_none());
        let report = egraph.egraph_report().expect("egraph plans carry a report");
        assert!(report.changed, "reassociation discovered");
        assert!(!report.budget_hit);
        assert!(report.extracted_cost < report.original_cost);

        // Same math, different plan: both stack, and results agree tightly
        // (the rewrite reorders floating-point accumulation).
        assert!(passes.stackable() && egraph.stackable());
        let mut g = OperandGen::new(23);
        let env = Env::<f64>::new().with("H", g.matrix(n, n)).with("x", g.matrix(n, 1));
        let a = passes.execute(&env);
        let b = egraph.execute(&env);
        assert!(a[0].approx_eq(&b[0], 1e-11), "opt levels must agree numerically");
    }

    #[test]
    fn egraph_opt_is_identity_when_nothing_cheaper_exists() {
        // SolveResidual's Hᵀ(y − Hx) is already optimal: the egraph plan
        // must execute bitwise-identically to the passes plan.
        let n = 16;
        let fw = Framework::flow();
        let expr = var("H").t() * (var("y") - var("H") * var("x"));
        let ctx = Context::new().with("H", n, n).with("x", n, 1).with("y", n, 1);
        let passes = Plan::compile(&fw, &expr, &ctx, registry::default_backend());
        let egraph =
            Plan::compile_opt(&fw, &expr, &ctx, registry::default_backend(), &[], OptLevel::Egraph);
        let report = egraph.egraph_report().unwrap();
        assert!(!report.changed, "ties keep the input form");
        let mut g = OperandGen::new(77);
        let env = Env::<f64>::new()
            .with("H", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1));
        assert_eq!(passes.execute(&env), egraph.execute(&env), "unchanged extraction is bitwise");
    }

    #[test]
    fn workspace_layout_is_dtype_scaled() {
        let n = 10;
        let fw = Framework::flow();
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        let plan = Plan::compile(&fw, &expr, &ctx, registry::default_backend());
        assert_eq!(plan.workspace_bytes::<f64>(), 2 * plan.workspace_bytes::<f32>());
        assert_eq!(plan.schedule().peak_live_elems(), n * n);
    }
}
