//! The compiled plan: optimized graph + precomputed execution schedule.

use std::time::Instant;

use laab_dense::{Matrix, Scalar};
use laab_expr::eval::Env;
use laab_expr::{Context, Expr};
use laab_framework::Framework;
use laab_graph::{execute_scheduled, Graph, PassStats, Schedule};

/// A compiled, reusable execution plan — the `ConcreteFunction` of the
/// `tf.function` analogy.
///
/// Built once per [`Signature`](crate::Signature) by tracing the
/// expression through the framework's graph mode, running the full
/// optimizer pipeline, and precomputing the execution [`Schedule`]
/// (reference counts + workspace layout). [`Plan::execute`] then re-runs
/// the identical sweep with fresh operand bindings: a cache hit pays no
/// tracing, no optimization, and no schedule derivation, and its result
/// is bitwise-identical to a cold trace.
#[derive(Debug)]
pub struct Plan {
    graph: Graph,
    schedule: Schedule,
    build_secs: f64,
    stats: PassStats,
}

impl Plan {
    /// Trace `expr` over the shapes in `ctx` through `fw`'s graph mode,
    /// optimize, and precompute the schedule. This is the full cold-trace
    /// cost a cache hit amortizes away.
    pub fn compile(fw: &Framework, expr: &Expr, ctx: &Context) -> Plan {
        let t0 = Instant::now();
        let function = fw.function_from_expr(expr, ctx);
        let (graph, _trace_time, stats) = function.into_plan_parts();
        let schedule = Schedule::new(&graph);
        Plan { build_secs: t0.elapsed().as_secs_f64(), graph, schedule, stats }
    }

    /// Execute the plan against fresh operand bindings.
    pub fn execute<T: Scalar>(&self, env: &Env<T>) -> Vec<Matrix<T>> {
        execute_scheduled(&self.graph, &self.schedule, env)
    }

    /// The optimized graph (inspection, DOT export).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The precomputed execution schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Wall-clock seconds the compile took (trace + optimize + schedule) —
    /// the per-signature cost the cache amortizes.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// What the optimizer pipeline did during compilation.
    pub fn pass_stats(&self) -> PassStats {
        self.stats
    }

    /// Peak intermediate workspace one in-flight execution needs, in
    /// bytes, for element type `T` (see
    /// [`Schedule::peak_live_elems`]).
    pub fn workspace_bytes<T: Scalar>(&self) -> usize {
        self.schedule.workspace_bytes::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;
    use laab_expr::var;

    #[test]
    fn plan_matches_function_call_bitwise() {
        let n = 12;
        let fw = Framework::flow();
        let s = var("A").t() * var("B");
        let expr = s.clone().t() * s;
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        let mut g = OperandGen::new(91);
        let env = Env::<f64>::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));

        let cold = fw.function_from_expr(&expr, &ctx).call(&env);
        let plan = Plan::compile(&fw, &expr, &ctx);
        // Two executions of the same plan, and the cold trace: all equal,
        // bit for bit.
        assert_eq!(plan.execute(&env), cold);
        assert_eq!(plan.execute(&env), cold);
        assert!(plan.build_secs() > 0.0);
        // CSE fired during compilation: one shared AᵀB.
        assert_eq!(plan.graph().matmul_count(), 2);
        assert!(plan.pass_stats().nodes_deduped >= 1);
    }

    #[test]
    fn workspace_layout_is_dtype_scaled() {
        let n = 10;
        let fw = Framework::flow();
        let expr = var("A") * var("B");
        let ctx = Context::new().with("A", n, n).with("B", n, n);
        let plan = Plan::compile(&fw, &expr, &ctx);
        assert_eq!(plan.workspace_bytes::<f64>(), 2 * plan.workspace_bytes::<f32>());
        assert_eq!(plan.schedule().peak_live_elems(), n * n);
    }
}
