//! The length-prefixed wire protocol between `laab loadgen` (or any
//! client) and the serving front-end ([`Server`](crate::Server)).
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! ┌────────────────┬───────────────────────────────────────────┐
//! │ len: u32 LE    │ payload (len bytes)                       │
//! └────────────────┴───────────────────────────────────────────┘
//!                    payload[0] = protocol version (PROTO_VERSION)
//!                    payload[1] = message tag
//!                    payload[2..] = message body, little-endian fields
//! ```
//!
//! The length prefix is bounded by [`MAX_FRAME_LEN`], so a corrupt or
//! hostile prefix can never trigger a giant allocation; an unknown
//! version or message tag is a structured [`FrameError`], never a panic.
//! Strings are `u16` length + UTF-8 bytes. The codec is hand-rolled over
//! `std::io` (no serialization dependency): the framing itself is the
//! subject under test, modeled on the ttrpc agent protocol the ROADMAP
//! references.
//!
//! Messages:
//!
//! * [`RequestMsg`] — one serving request: client-assigned `id` (frames
//!   may complete out of order; the id is the correlation key), the
//!   workload-family callsite, operand size, dtype, target backend, and
//!   the payload identity (which vector operands the request binds — see
//!   [`Request::env_from_pool`](crate::workload::Request::env_from_pool)).
//! * [`ResponseMsg`] — the matching completion: queue delay and
//!   per-request execution share in nanoseconds, the admitted batch's
//!   occupancy and [`FlushKind`], and a [checksum](result_checksum) of
//!   the result matrices so clients can assert bitwise identity with an
//!   in-process oracle without shipping the matrices back.
//! * [`Message::Shutdown`] / [`Message::ShutdownAck`] — graceful server
//!   shutdown: the server stops accepting, drains in-flight work, acks,
//!   and removes its unix socket file.

use std::io::{Read, Write};
use std::sync::Arc;

use laab_backend::Dtype;
use laab_dense::{Matrix, Scalar};

use crate::admission::FlushKind;

/// Protocol version byte carried by every frame. Version 2 adds the
/// per-request `deadline_us` field and the `Busy`/`Expired`/`Failed`
/// response statuses. The decoder still accepts version-1 frames (a v1
/// request simply carries no deadline), so old clients keep working; the
/// encoder always emits the current version.
pub const PROTO_VERSION: u8 = 2;

/// The previous protocol version, still accepted on decode: requests
/// lack `deadline_us` (treated as "no deadline") and responses only
/// carry the ok/error statuses.
pub const PROTO_VERSION_V1: u8 = 1;

/// Upper bound on one frame's payload length. Requests and responses are
/// tiny (well under 1 KiB); anything larger is a corrupt or hostile
/// length prefix and is rejected before allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024;

/// Message tag bytes (payload\[1\]).
const TAG_REQUEST: u8 = 1;
const TAG_RESPONSE: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_SHUTDOWN_ACK: u8 = 4;

/// Why a frame could not be decoded (or read). These are the transport
/// layer's structured errors — every malformed input maps to a variant,
/// never a panic, so a misbehaving client cannot take the server down.
#[derive(Debug, Clone)]
pub enum FrameError {
    /// The underlying socket read/write failed.
    Io(Arc<std::io::Error>),
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The frame's version byte is neither [`PROTO_VERSION`] nor
    /// [`PROTO_VERSION_V1`].
    UnknownVersion(u8),
    /// The frame's message tag is not one this version defines.
    UnknownMessage(u8),
    /// A dtype byte that names no [`Dtype`].
    UnknownDtype(u8),
    /// A flush-kind byte that names no [`FlushKind`].
    UnknownFlush(u8),
    /// A response status byte that is neither ok nor error.
    UnknownStatus(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The payload was longer than the message it encodes.
    TrailingBytes {
        /// Unconsumed bytes after the message body.
        extra: usize,
    },
    /// The frame decoded structurally but its shape fields are
    /// inconsistent (zero operand size, empty family/backend name, a
    /// served response claiming zero occupancy). Rejected here so
    /// nonsense never reaches plan compilation.
    BadPayload {
        /// Which invariant the payload violated.
        what: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket I/O failed: {e}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::Oversized { len } => {
                write!(f, "oversized frame: length prefix {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            FrameError::UnknownVersion(v) => {
                write!(f, "unknown protocol version {v} (this build speaks {PROTO_VERSION})")
            }
            FrameError::UnknownMessage(t) => write!(f, "unknown message tag {t}"),
            FrameError::UnknownDtype(d) => write!(f, "unknown dtype byte {d}"),
            FrameError::UnknownFlush(k) => write!(f, "unknown flush-kind byte {k}"),
            FrameError::UnknownStatus(s) => write!(f, "unknown response status byte {s}"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "frame carries {extra} trailing bytes past the message body")
            }
            FrameError::BadPayload { what } => {
                write!(f, "inconsistent payload: {what}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl PartialEq for FrameError {
    /// Structural equality; I/O errors compare by [`std::io::ErrorKind`]
    /// (the payload is not comparable).
    fn eq(&self, other: &Self) -> bool {
        use FrameError::*;
        match (self, other) {
            (Io(a), Io(b)) => a.kind() == b.kind(),
            (Truncated { needed: a, got: b }, Truncated { needed: c, got: d }) => (a, b) == (c, d),
            (Oversized { len: a }, Oversized { len: b }) => a == b,
            (UnknownVersion(a), UnknownVersion(b)) => a == b,
            (UnknownMessage(a), UnknownMessage(b)) => a == b,
            (UnknownDtype(a), UnknownDtype(b)) => a == b,
            (UnknownFlush(a), UnknownFlush(b)) => a == b,
            (UnknownStatus(a), UnknownStatus(b)) => a == b,
            (BadUtf8, BadUtf8) => true,
            (TrailingBytes { extra: a }, TrailingBytes { extra: b }) => a == b,
            (BadPayload { what: a }, BadPayload { what: b }) => a == b,
            _ => false,
        }
    }
}

/// One serving request as it travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMsg {
    /// Client-assigned correlation id, echoed in the response. Responses
    /// may arrive out of request order (batching reorders completion).
    pub id: u64,
    /// The workload-family callsite ([`Family::id`](crate::workload::Family::id)).
    pub family: String,
    /// Operand size.
    pub n: u64,
    /// Element precision.
    pub dtype: Dtype,
    /// Registry name of the backend to execute on.
    pub backend: String,
    /// Payload identity (selects the request's vector operand values).
    pub payload: u64,
    /// Microseconds the client is willing to wait, measured from server
    /// receipt; `0` means no deadline. A request whose deadline elapses
    /// before execution gets [`Outcome::Expired`] instead of compute.
    /// Version-1 frames carry no deadline field and decode as `0`.
    pub deadline_us: u64,
}

/// The server's completion report for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseMsg {
    /// Echo of the request's correlation id.
    pub id: u64,
    /// How the request fared.
    pub outcome: Outcome,
}

/// A response's body: served, or rejected with a message.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The request executed.
    Ok {
        /// Nanoseconds between admission and the batch starting to
        /// execute — the queueing delay the deadline window bounds.
        queue_ns: u64,
        /// Per-request share of the batch's execution time, nanoseconds.
        exec_ns: u64,
        /// How many requests the admitted batch held.
        occupancy: u32,
        /// What flushed the batch (occupancy, deadline, or drain).
        flush: FlushKind,
        /// [`result_checksum`] over the result matrices, for bitwise
        /// comparison against an in-process oracle.
        checksum: u64,
    },
    /// The request was rejected (unknown family/backend, unsupported
    /// dtype, out-of-range size); nothing executed.
    Err {
        /// Human-readable rejection reason.
        message: String,
    },
    /// The server shed the request under load (per-connection in-flight
    /// cap or admission backlog full). Nothing executed; the client may
    /// retry after the hinted backoff.
    Busy {
        /// Suggested minimum microseconds before retrying.
        retry_after_us: u64,
    },
    /// The request's deadline elapsed before execution started; the
    /// server skipped the work rather than serve a stale answer.
    Expired {
        /// Microseconds the request had waited when it was dropped.
        waited_us: u64,
    },
    /// Execution was attempted and died (a panic caught at the executor
    /// boundary, or the signature is quarantined after repeated
    /// failures). The pool survives; this request does not.
    Failed {
        /// Human-readable failure reason (panic payload or quarantine
        /// notice).
        message: String,
    },
}

/// Every message the protocol defines.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A serving request (client → server).
    Request(RequestMsg),
    /// A completion (server → client).
    Response(ResponseMsg),
    /// Ask the server to shut down gracefully (client → server).
    Shutdown,
    /// The server acknowledges shutdown; it drains and exits after this
    /// frame (server → client).
    ShutdownAck,
}

// ---- encode ----

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "protocol strings are short");
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
}

fn dtype_byte(d: Dtype) -> u8 {
    match d {
        Dtype::F32 => 1,
        Dtype::F64 => 2,
    }
}

fn dtype_of(b: u8) -> Result<Dtype, FrameError> {
    match b {
        1 => Ok(Dtype::F32),
        2 => Ok(Dtype::F64),
        other => Err(FrameError::UnknownDtype(other)),
    }
}

fn flush_byte(k: FlushKind) -> u8 {
    match k {
        FlushKind::Occupancy => 1,
        FlushKind::Deadline => 2,
        FlushKind::Drain => 3,
        FlushKind::Pressure => 4,
    }
}

fn flush_of(b: u8) -> Result<FlushKind, FrameError> {
    match b {
        1 => Ok(FlushKind::Occupancy),
        2 => Ok(FlushKind::Deadline),
        3 => Ok(FlushKind::Drain),
        4 => Ok(FlushKind::Pressure),
        other => Err(FrameError::UnknownFlush(other)),
    }
}

/// Encode `msg` as one complete frame (length prefix included).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut body = vec![PROTO_VERSION];
    match msg {
        Message::Request(r) => {
            body.push(TAG_REQUEST);
            body.extend_from_slice(&r.id.to_le_bytes());
            put_str(&mut body, &r.family);
            body.extend_from_slice(&r.n.to_le_bytes());
            body.push(dtype_byte(r.dtype));
            put_str(&mut body, &r.backend);
            body.extend_from_slice(&r.payload.to_le_bytes());
            body.extend_from_slice(&r.deadline_us.to_le_bytes());
        }
        Message::Response(r) => {
            body.push(TAG_RESPONSE);
            body.extend_from_slice(&r.id.to_le_bytes());
            match &r.outcome {
                Outcome::Ok { queue_ns, exec_ns, occupancy, flush, checksum } => {
                    body.push(0);
                    body.extend_from_slice(&queue_ns.to_le_bytes());
                    body.extend_from_slice(&exec_ns.to_le_bytes());
                    body.extend_from_slice(&occupancy.to_le_bytes());
                    body.push(flush_byte(*flush));
                    body.extend_from_slice(&checksum.to_le_bytes());
                }
                Outcome::Err { message } => {
                    body.push(1);
                    put_str(&mut body, message);
                }
                Outcome::Busy { retry_after_us } => {
                    body.push(2);
                    body.extend_from_slice(&retry_after_us.to_le_bytes());
                }
                Outcome::Expired { waited_us } => {
                    body.push(3);
                    body.extend_from_slice(&waited_us.to_le_bytes());
                }
                Outcome::Failed { message } => {
                    body.push(4);
                    put_str(&mut body, message);
                }
            }
        }
        Message::Shutdown => body.push(TAG_SHUTDOWN),
        Message::ShutdownAck => body.push(TAG_SHUTDOWN_ACK),
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

// ---- decode ----

/// A byte cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Truncated { needed: self.pos + n, got: self.buf.len() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }
}

/// Decode one frame's payload (version byte onward, length prefix
/// already stripped and validated).
fn decode_payload(payload: &[u8]) -> Result<Message, FrameError> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let version = c.u8()?;
    if version != PROTO_VERSION && version != PROTO_VERSION_V1 {
        return Err(FrameError::UnknownVersion(version));
    }
    let msg = match c.u8()? {
        TAG_REQUEST => {
            let req = RequestMsg {
                id: c.u64()?,
                family: c.str()?,
                n: c.u64()?,
                dtype: dtype_of(c.u8()?)?,
                backend: c.str()?,
                payload: c.u64()?,
                deadline_us: if version >= 2 { c.u64()? } else { 0 },
            };
            if req.n == 0 {
                return Err(FrameError::BadPayload { what: "request operand size n = 0" });
            }
            if req.family.is_empty() {
                return Err(FrameError::BadPayload { what: "request family name is empty" });
            }
            if req.backend.is_empty() {
                return Err(FrameError::BadPayload { what: "request backend name is empty" });
            }
            Message::Request(req)
        }
        TAG_RESPONSE => {
            let id = c.u64()?;
            let outcome = match c.u8()? {
                0 => {
                    let ok = Outcome::Ok {
                        queue_ns: c.u64()?,
                        exec_ns: c.u64()?,
                        occupancy: c.u32()?,
                        flush: flush_of(c.u8()?)?,
                        checksum: c.u64()?,
                    };
                    if matches!(ok, Outcome::Ok { occupancy: 0, .. }) {
                        return Err(FrameError::BadPayload {
                            what: "served response claims batch occupancy 0",
                        });
                    }
                    ok
                }
                1 => Outcome::Err { message: c.str()? },
                2 if version >= 2 => Outcome::Busy { retry_after_us: c.u64()? },
                3 if version >= 2 => Outcome::Expired { waited_us: c.u64()? },
                4 if version >= 2 => Outcome::Failed { message: c.str()? },
                other => return Err(FrameError::UnknownStatus(other)),
            };
            Message::Response(ResponseMsg { id, outcome })
        }
        TAG_SHUTDOWN => Message::Shutdown,
        TAG_SHUTDOWN_ACK => Message::ShutdownAck,
        other => return Err(FrameError::UnknownMessage(other)),
    };
    if c.pos != payload.len() {
        return Err(FrameError::TrailingBytes { extra: payload.len() - c.pos });
    }
    Ok(msg)
}

/// Decode one frame from the front of `buf`, returning the message and
/// the bytes consumed. Rejects truncated input, an oversized length
/// prefix, and every malformed payload with a [`FrameError`] — the
/// decoder never panics on wire bytes.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated { needed: 4, got: buf.len() });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Err(FrameError::Truncated { needed: total, got: buf.len() });
    }
    let msg = decode_payload(&buf[4..total])?;
    Ok((msg, total))
}

/// Write `msg` as one frame to `w` (flushing).
pub fn write_message(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Read one frame from `r`. `Ok(None)` is a clean end of stream (the
/// peer closed between frames); EOF *inside* a frame is
/// [`FrameError::Truncated`].
pub fn read_message(r: &mut impl Read) -> Result<Option<Message>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated { needed: 4, got });
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(Arc::new(e))),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated { needed: 4 + len as usize, got: 4 + filled })
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(Arc::new(e))),
        }
    }
    decode_payload(&payload).map(Some)
}

/// A stable FNV-1a checksum over result matrices: shapes plus the exact
/// bit pattern of every element (`f32` widens to `f64` losslessly).
/// Equal checksums across a server execution and an in-process oracle
/// mean bitwise-identical results without shipping matrices over the
/// wire.
pub fn result_checksum<T: Scalar>(results: &[Matrix<T>]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for m in results {
        mix(m.rows() as u64);
        mix(m.cols() as u64);
        for &v in m.as_slice() {
            mix(v.to_f64().to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Message {
        Message::Request(RequestMsg {
            id: 42,
            family: "chain".into(),
            n: 192,
            dtype: Dtype::F64,
            backend: "engine".into(),
            payload: 7,
            deadline_us: 1_500,
        })
    }

    fn response() -> Message {
        Message::Response(ResponseMsg {
            id: 42,
            outcome: Outcome::Ok {
                queue_ns: 123,
                exec_ns: 456,
                occupancy: 3,
                flush: FlushKind::Deadline,
                checksum: 0xDEAD_BEEF,
            },
        })
    }

    #[test]
    fn round_trips_every_message_kind() {
        let err = Message::Response(ResponseMsg {
            id: 9,
            outcome: Outcome::Err { message: "unknown backend `cuda`".into() },
        });
        let busy = Message::Response(ResponseMsg {
            id: 10,
            outcome: Outcome::Busy { retry_after_us: 750 },
        });
        let expired = Message::Response(ResponseMsg {
            id: 11,
            outcome: Outcome::Expired { waited_us: 2_500 },
        });
        let failed = Message::Response(ResponseMsg {
            id: 12,
            outcome: Outcome::Failed { message: "injected fault: panic".into() },
        });
        for msg in [
            request(),
            response(),
            err,
            busy,
            expired,
            failed,
            Message::Shutdown,
            Message::ShutdownAck,
        ] {
            let frame = encode_frame(&msg);
            let (back, used) = decode_frame(&frame).expect("round-trips");
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
            // And through the stream reader.
            let mut r = &frame[..];
            assert_eq!(read_message(&mut r).expect("reads"), Some(msg));
        }
    }

    /// Hand-encode a version-1 frame (no `deadline_us`) for the given
    /// request fields, exactly as the PR-6 encoder laid it out.
    fn encode_v1_request(id: u64, family: &str, n: u64, backend: &str, payload: u64) -> Vec<u8> {
        let mut body = vec![PROTO_VERSION_V1, 1u8]; // version, TAG_REQUEST
        body.extend_from_slice(&id.to_le_bytes());
        body.extend_from_slice(&(family.len() as u16).to_le_bytes());
        body.extend_from_slice(family.as_bytes());
        body.extend_from_slice(&n.to_le_bytes());
        body.push(2); // Dtype::F64
        body.extend_from_slice(&(backend.len() as u16).to_le_bytes());
        body.extend_from_slice(backend.as_bytes());
        body.extend_from_slice(&payload.to_le_bytes());
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    #[test]
    fn version_one_requests_still_decode_with_no_deadline() {
        let frame = encode_v1_request(77, "chain", 96, "engine", 5);
        let (msg, used) = decode_frame(&frame).expect("v1 decodes");
        assert_eq!(used, frame.len());
        match msg {
            Message::Request(r) => {
                assert_eq!(r.id, 77);
                assert_eq!(r.family, "chain");
                assert_eq!(r.n, 96);
                assert_eq!(r.backend, "engine");
                assert_eq!(r.payload, 5);
                assert_eq!(r.deadline_us, 0, "v1 frames carry no deadline");
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn version_one_frames_reject_v2_only_statuses() {
        // A v1 response with status byte 2 (Busy in v2) is unknown under v1.
        let mut body = vec![PROTO_VERSION_V1, 2u8]; // version, TAG_RESPONSE
        body.extend_from_slice(&42u64.to_le_bytes());
        body.push(2);
        body.extend_from_slice(&750u64.to_le_bytes());
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        assert_eq!(decode_frame(&frame), Err(FrameError::UnknownStatus(2)));
    }

    #[test]
    fn inconsistent_shape_fields_are_bad_payload() {
        // n = 0 in an otherwise well-formed request.
        let zero_n = Message::Request(RequestMsg {
            id: 1,
            family: "chain".into(),
            n: 0,
            dtype: Dtype::F64,
            backend: "engine".into(),
            payload: 0,
            deadline_us: 0,
        });
        assert!(matches!(
            decode_frame(&encode_frame(&zero_n)),
            Err(FrameError::BadPayload { what }) if what.contains("n = 0")
        ));
        // Empty family and backend strings.
        let empty_family = Message::Request(RequestMsg {
            id: 1,
            family: String::new(),
            n: 8,
            dtype: Dtype::F64,
            backend: "engine".into(),
            payload: 0,
            deadline_us: 0,
        });
        assert!(matches!(
            decode_frame(&encode_frame(&empty_family)),
            Err(FrameError::BadPayload { what }) if what.contains("family")
        ));
        let empty_backend = Message::Request(RequestMsg {
            id: 1,
            family: "chain".into(),
            n: 8,
            dtype: Dtype::F64,
            backend: String::new(),
            payload: 0,
            deadline_us: 0,
        });
        assert!(matches!(
            decode_frame(&encode_frame(&empty_backend)),
            Err(FrameError::BadPayload { what }) if what.contains("backend")
        ));
        // A served response claiming occupancy 0.
        let zero_occ = Message::Response(ResponseMsg {
            id: 1,
            outcome: Outcome::Ok {
                queue_ns: 1,
                exec_ns: 1,
                occupancy: 0,
                flush: FlushKind::Drain,
                checksum: 0,
            },
        });
        assert!(matches!(
            decode_frame(&encode_frame(&zero_occ)),
            Err(FrameError::BadPayload { what }) if what.contains("occupancy")
        ));
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_truncated() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_message(&mut empty).unwrap(), None);
        let frame = encode_frame(&request());
        let mut cut = &frame[..frame.len() - 3];
        assert!(matches!(read_message(&mut cut), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut frame = encode_frame(&request());
        frame[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(FrameError::Oversized { len: MAX_FRAME_LEN + 1 }));
        let mut r = &frame[..];
        assert!(matches!(read_message(&mut r), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn unknown_version_and_tag_are_structured_errors() {
        let mut frame = encode_frame(&request());
        frame[4] = 99; // version byte
        assert_eq!(decode_frame(&frame), Err(FrameError::UnknownVersion(99)));
        let mut frame = encode_frame(&Message::Shutdown);
        frame[5] = 250; // tag byte
        assert_eq!(decode_frame(&frame), Err(FrameError::UnknownMessage(250)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_frame(&Message::Shutdown);
        frame.push(0);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) + 1;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(FrameError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn checksum_is_bit_exact_and_shape_aware() {
        let a = Matrix::<f64>::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let b = a.clone();
        assert_eq!(
            result_checksum(std::slice::from_ref(&a)),
            result_checksum(std::slice::from_ref(&b))
        );
        // One ULP of drift changes the checksum.
        let mut c = a.clone();
        let v = c.get(0, 0);
        c.set(0, 0, f64::from_bits(v.to_bits() + 1));
        assert_ne!(result_checksum(std::slice::from_ref(&a)), result_checksum(&[c]));
        // Same data, different shape: distinct.
        let flat = Matrix::<f64>::from_fn(2, 3, |i, j| {
            let k = i * 3 + j;
            ((k / 2) * 2 + k % 2) as f64
        });
        assert_ne!(result_checksum(&[a]), result_checksum(&[flat]));
        // f32 checksums see exact bit patterns too (f32 → f64 is lossless).
        let f = Matrix::<f32>::from_fn(2, 2, |i, j| (i + j) as f32 + 0.125);
        assert_eq!(result_checksum(std::slice::from_ref(&f)), result_checksum(&[f]));
    }
}
