//! The blocking network server: listener → admission → batch → backend.
//!
//! `laab serve --listen <addr>` runs this front-end. The dataflow is the
//! same three layers the in-process loop composes, with the generator
//! replaced by sockets:
//!
//! ```text
//!  connections ──► reader threads ──► AdmissionQueue ──► executor pool
//!  (unix/tcp)      (decode+validate)  (deadline|occupancy)  (plan cache
//!                                                           → backend)
//! ```
//!
//! One reader thread per accepted connection decodes
//! [`proto`] frames, validates each request against the
//! served backend set (unknown family/backend, unsupported dtype, and
//! out-of-range sizes are *rejected with a response frame*, never a
//! panic), and submits jobs keyed by `(family, n, dtype, backend)` —
//! exactly what determines the plan-cache [`Signature`](crate::Signature).
//! A pool of executor threads (the `clients` count of the in-process
//! loop) drains whole batches through the shared [`PlanCache`] and
//! writes one response frame per request, carrying the measured queue
//! delay, the per-request execution share, the batch occupancy and
//! [`FlushKind`](crate::FlushKind), and a [checksum](crate::proto::result_checksum)
//! of the result matrices for client-side bitwise validation.
//!
//! Shutdown is graceful and in-band: a [`Message::Shutdown`] frame is
//! acknowledged immediately, the listener stops accepting, readers drain
//! to EOF, the admission queue flushes its partial groups, executors
//! finish the backlog, and — for unix sockets — the socket file is
//! removed. [`Server::run`] then returns the run's [`ServerStats`].

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use laab_backend::{BackendScalar, Dtype, Registration};
use laab_expr::eval::Env;
use laab_framework::Framework;

use crate::admission::{AdmissionQueue, AdmissionStats, FlushedBatch, SubmitOutcome};
use crate::bench::{resolve_backends, ServeConfig, ServeError};
use crate::cache::PlanCache;
use crate::fault::{FaultCounts, FaultInjector};
use crate::plan::Plan;
use crate::proto::{self, FrameError, Message, Outcome, RequestMsg, ResponseMsg};
use crate::workload::{Family, Request};

/// The XOR mask an injected `corrupt` fault applies to a response
/// checksum. Constant (not keyed) so tests can predict the corrupted
/// value exactly.
pub(crate) const CORRUPT_MASK: u64 = 0x5AAB_5AAB_5AAB_5AAB;

/// A parsed listen/connect address: a unix socket path or a TCP
/// host:port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl Listen {
    /// Parse an address spec. Accepted forms: `unix:<path>`,
    /// `tcp:<host:port>`, a bare path containing `/` (unix), or a bare
    /// `host:port` (TCP).
    pub fn parse(spec: &str) -> Result<Listen, ServeError> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ServeError::BadListen(spec.to_string()));
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() || !addr.contains(':') {
                return Err(ServeError::BadListen(spec.to_string()));
            }
            return Ok(Listen::Tcp(addr.to_string()));
        }
        if spec.contains('/') {
            return Ok(Listen::Unix(PathBuf::from(spec)));
        }
        if spec.contains(':') {
            return Ok(Listen::Tcp(spec.to_string()));
        }
        Err(ServeError::BadListen(spec.to_string()))
    }

    /// The canonical `unix:`/`tcp:`-prefixed spelling.
    pub fn display(&self) -> String {
        match self {
            Listen::Unix(p) => format!("unix:{}", p.display()),
            Listen::Tcp(a) => format!("tcp:{a}"),
        }
    }
}

/// One established connection, either flavor. Cloned once per
/// connection: the original feeds the reader, the clone (behind a
/// mutex) is shared by the executors writing responses.
pub(crate) enum Stream {
    /// A unix-domain stream.
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Bound the time a blocking `read` may wait. `None` restores the
    /// default (wait forever). Reads that hit the bound fail with
    /// `WouldBlock` (unix) or `TimedOut` (TCP, some platforms).
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Connect to a listening server (used by the load generator and by the
/// server itself to unblock its own accept loop at shutdown).
pub(crate) fn connect(addr: &Listen) -> Result<Stream, ServeError> {
    let wrap =
        |e: std::io::Error| ServeError::Connect { addr: addr.display(), source: Arc::new(e) };
    match addr {
        Listen::Unix(path) => UnixStream::connect(path).map(Stream::Unix).map_err(wrap),
        Listen::Tcp(spec) => TcpStream::connect(spec.as_str()).map(Stream::Tcp).map_err(wrap),
    }
}

enum ListenerKind {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl ListenerKind {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (the shutdown-unblocking self-connection is
    /// not counted).
    pub connections: u64,
    /// Requests executed and answered with an `Ok` response.
    pub served: u64,
    /// Requests answered with an error response (validation failures,
    /// submits after close).
    pub rejected: u64,
    /// Requests answered with a `Busy` rejection: the per-connection
    /// in-flight cap or the global admission backlog was full.
    pub shed: u64,
    /// Requests answered with an `Expired` response: their deadline
    /// passed while they waited in the admission queue.
    pub expired: u64,
    /// Requests answered with a `Failed` response because execution
    /// panicked (the executor caught the unwind and kept serving).
    pub failed: u64,
    /// Requests refused up front because their `(signature, backend)`
    /// was quarantined after repeated execution failures.
    pub quarantined: u64,
    /// Connections reaped by the read timeout: the peer connected and
    /// went silent, and the reader thread gave up waiting.
    pub reaped: u64,
    /// What the fault-injection layer did (all zero without `--faults`).
    pub faults: FaultCounts,
    /// The admission queue's flush counters.
    pub admission: AdmissionStats,
}

/// The admission-queue key: exactly the fields that determine the
/// plan-cache [`Signature`](crate::Signature) plus the target backend.
type JobKey = (Family, usize, Dtype, &'static str);

/// One validated request waiting in the admission queue.
struct ServerJob {
    writer: Arc<Mutex<Stream>>,
    id: u64,
    request: Request,
    backend: &'static Registration,
    at: Instant,
    /// Absolute expiry instant (`None` when the client sent no
    /// deadline). Checked at dequeue and again pre-execution.
    deadline: Option<Instant>,
    /// The owning connection's in-flight gauge, decremented exactly
    /// once when the job's terminal response is written.
    inflight: Arc<AtomicI64>,
}

impl ServerJob {
    /// Answer the job and release its in-flight slot. Every admitted
    /// job must end here exactly once.
    fn finish(&self, outcome: Outcome) {
        respond(&self.writer, self.id, outcome);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The server-lifetime response-class counters, shared by readers and
/// executors.
#[derive(Default)]
struct Counters {
    served: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    quarantined: AtomicU64,
    reaped: AtomicU64,
}

impl Counters {
    fn bump(&self, which: &AtomicU64) {
        which.fetch_add(1, Ordering::Relaxed);
    }
}

/// Failure bookkeeping per `(family, n, dtype, backend)`. Once a key
/// accumulates `after` execution failures it is quarantined: further
/// requests are refused with a `Failed` response before touching the
/// executor pool. `after == 0` disables quarantining.
struct Quarantine {
    after: u32,
    failures: Mutex<HashMap<JobKey, u32>>,
}

impl Quarantine {
    fn new(after: u32) -> Quarantine {
        Quarantine { after, failures: Mutex::new(HashMap::new()) }
    }

    fn is_quarantined(&self, key: &JobKey) -> bool {
        self.after > 0
            && self
                .failures
                .lock()
                .expect("quarantine map")
                .get(key)
                .is_some_and(|&c| c >= self.after)
    }

    fn record_failure(&self, key: JobKey) {
        if self.after == 0 {
            return;
        }
        *self.failures.lock().expect("quarantine map").entry(key).or_insert(0) += 1;
    }
}

/// Per-`(family, n)` operand pools, built lazily as signatures appear.
struct PoolPair {
    f64: Env<f64>,
    f32: Env<f32>,
}

/// The blocking serving front-end. Construct with [`Server::bind`], then
/// [`Server::run`] until a client sends [`Message::Shutdown`].
pub struct Server {
    local: Listen,
    listener: ListenerKind,
    cfg: ServeConfig,
    regs: Vec<&'static Registration>,
    record_arrivals: Option<PathBuf>,
}

impl Server {
    /// Bind the listener. Validates the config the way the builder does
    /// — backend names, shard count, window/deadline coherence — because
    /// a live server with a coalescing window and no deadline would hold
    /// lonely requests forever.
    ///
    /// # Errors
    /// Config rejections ([`ServeError::UnknownBackend`] etc.,
    /// [`ServeError::ZeroShards`], [`ServeError::MissingDeadline`]),
    /// [`ServeError::BadListen`] for an unintelligible address, and
    /// [`ServeError::Bind`] when the OS refuses the socket.
    pub fn bind(spec: &str, cfg: &ServeConfig) -> Result<Server, ServeError> {
        let addr = Listen::parse(spec)?;
        let regs = resolve_backends(&cfg.backends)?;
        if cfg.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if cfg.batching_enabled() && cfg.batch_deadline_us == 0 {
            return Err(ServeError::MissingDeadline { window: cfg.batch_window });
        }
        let wrap =
            |e: std::io::Error| ServeError::Bind { addr: addr.display(), source: Arc::new(e) };
        let (listener, local) = match &addr {
            Listen::Unix(path) => {
                (ListenerKind::Unix(UnixListener::bind(path).map_err(wrap)?), addr.clone())
            }
            Listen::Tcp(spec) => {
                let l = TcpListener::bind(spec.as_str()).map_err(wrap)?;
                // Report the resolved address, so `tcp:127.0.0.1:0`
                // (ephemeral port) is connectable from the returned spec.
                let local = l
                    .local_addr()
                    .map(|a| Listen::Tcp(a.to_string()))
                    .unwrap_or_else(|_| addr.clone());
                (ListenerKind::Tcp(l), local)
            }
        };
        Ok(Server { local, listener, cfg: cfg.clone(), regs, record_arrivals: None })
    }

    /// Record the arrival instant of every validated request and write
    /// the inter-arrival gaps (microseconds, one per line, `#` header)
    /// to `path` at shutdown — the trace format `laab loadgen
    /// --arrivals replay:<path>` plays back. Best-effort: an unwritable
    /// path loses the trace, never the run.
    pub fn record_arrivals(mut self, path: impl Into<PathBuf>) -> Server {
        self.record_arrivals = Some(path.into());
        self
    }

    /// The bound address in canonical `unix:`/`tcp:` form (for TCP, with
    /// the ephemeral port resolved).
    pub fn local_addr(&self) -> String {
        self.local.display()
    }

    /// Serve until a client sends [`Message::Shutdown`], then drain and
    /// return the stats. Blocking: readers, executors, and the accept
    /// loop all run on scoped threads inside this call. On a unix
    /// listener the socket file is removed before returning — a clean
    /// shutdown leaks nothing.
    ///
    /// # Errors
    /// [`ServeError::Accept`] if the listener itself fails (individual
    /// connection failures only drop that connection).
    pub fn run(self) -> Result<ServerStats, ServeError> {
        let Server { local, listener, cfg, regs, record_arrivals } = self;
        let arrivals = record_arrivals.as_ref().map(|_| Mutex::new(Vec::new()));
        let queue: AdmissionQueue<JobKey, ServerJob> =
            AdmissionQueue::bounded(cfg.batch_window, cfg.deadline(), cfg.backlog);
        let cache = PlanCache::with_shards(cfg.cache_capacity.max(1) * regs.len(), cfg.shards);
        let fw = Framework::flow();
        let pools: Mutex<HashMap<(Family, usize), Arc<PoolPair>>> = Mutex::new(HashMap::new());
        let shutdown = AtomicBool::new(false);
        let counters = Counters::default();
        let quarantine = Quarantine::new(cfg.quarantine_after);
        let injector = cfg.faults.map(|plan| FaultInjector::new(plan, cfg.seed));
        let ctx = ReaderCtx {
            queue: &queue,
            regs: &regs,
            shutdown: &shutdown,
            local: &local,
            counters: &counters,
            quarantine: &quarantine,
            injector: injector.as_ref(),
            max_inflight: cfg.max_inflight,
            read_timeout: (cfg.read_timeout_ms > 0)
                .then(|| Duration::from_millis(cfg.read_timeout_ms)),
            retry_after_us: cfg.batch_deadline_us.max(100) * 2,
            arrivals: arrivals.as_ref(),
        };
        let mut connections = 0u64;
        let mut accept_err: Option<ServeError> = None;

        std::thread::scope(|scope| {
            let mut executors = Vec::new();
            for _ in 0..cfg.resolved_clients() {
                let (queue, cache, fw, pools) = (&queue, &cache, &fw, &pools);
                let (counters, quarantine, injector) = (&counters, &quarantine, injector.as_ref());
                let seed = cfg.seed;
                executors.push(scope.spawn(move || {
                    while let Some(batch) = queue.next_batch() {
                        execute_batch(
                            &batch, cache, fw, pools, seed, counters, quarantine, injector,
                        );
                    }
                }));
            }

            let mut readers = Vec::new();
            loop {
                let stream = match listener.accept() {
                    Ok(s) => s,
                    Err(e) => {
                        if !shutdown.load(Ordering::SeqCst) {
                            accept_err = Some(ServeError::Accept(Arc::new(e)));
                        }
                        break;
                    }
                };
                if shutdown.load(Ordering::SeqCst) {
                    // The self-connection that unblocked accept; drop it.
                    break;
                }
                connections += 1;
                let ctx = &ctx;
                readers.push(scope.spawn(move || {
                    reader_loop(stream, ctx);
                }));
            }

            // Readers exit at their client's EOF; only then is the queue
            // closed, so no accepted request is dropped un-answered.
            for r in readers {
                let _ = r.join();
            }
            queue.close();
            for e in executors {
                let _ = e.join();
            }
        });

        if let Listen::Unix(path) = &local {
            let _ = std::fs::remove_file(path);
        }
        if let (Some(path), Some(log)) = (&record_arrivals, arrivals) {
            write_arrival_trace(path, &log.into_inner().expect("arrival trace"));
        }
        if let Some(e) = accept_err {
            return Err(e);
        }
        Ok(ServerStats {
            connections,
            served: counters.served.load(Ordering::Relaxed),
            rejected: counters.rejected.load(Ordering::Relaxed),
            shed: counters.shed.load(Ordering::Relaxed),
            expired: counters.expired.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            quarantined: counters.quarantined.load(Ordering::Relaxed),
            reaped: counters.reaped.load(Ordering::Relaxed),
            faults: injector.as_ref().map(FaultInjector::counts).unwrap_or_default(),
            admission: queue.stats(),
        })
    }
}

/// Everything a reader thread needs, bundled so the per-connection
/// spawn stays one borrow.
struct ReaderCtx<'a> {
    queue: &'a AdmissionQueue<JobKey, ServerJob>,
    regs: &'a [&'static Registration],
    shutdown: &'a AtomicBool,
    local: &'a Listen,
    counters: &'a Counters,
    quarantine: &'a Quarantine,
    injector: Option<&'a FaultInjector>,
    max_inflight: usize,
    read_timeout: Option<Duration>,
    retry_after_us: u64,
    /// Arrival-instant log, present only under `--record-arrivals`.
    arrivals: Option<&'a Mutex<Vec<Instant>>>,
}

/// Serialize observed arrivals as inter-arrival gaps in microseconds,
/// one per line under a comment header — exactly what
/// [`Arrival::parse`](crate::Arrival)'s `replay:<file>` form loads.
/// Best-effort by design: the trace is advisory output, not run state.
fn write_arrival_trace(path: &std::path::Path, arrivals: &[Instant]) {
    use std::fmt::Write as _;
    let mut text = String::from("# laab arrival trace: inter-arrival gaps, microseconds\n");
    for pair in arrivals.windows(2) {
        let gap_us = pair[1].duration_since(pair[0]).as_nanos() as f64 / 1e3;
        let _ = writeln!(text, "{gap_us:.3}");
    }
    let _ = std::fs::write(path, text);
}

/// Answer one connection: decode frames, validate, apply admission
/// control, submit; on [`Message::Shutdown`], ack, stop the acceptor,
/// and drain to EOF. A malformed frame drops the connection (the
/// stream position is unrecoverable) without touching the rest of the
/// server; a read that exceeds the configured timeout *reaps* the
/// connection — a silent peer no longer pins a thread forever.
fn reader_loop(stream: Stream, ctx: &ReaderCtx<'_>) {
    if stream.set_read_timeout(ctx.read_timeout).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let inflight = Arc::new(AtomicI64::new(0));
    let mut reader = stream;
    loop {
        match proto::read_message(&mut reader) {
            Ok(Some(Message::Request(msg))) => match validate(&msg, ctx.regs) {
                Ok((request, backend)) => {
                    admit(&msg, request, backend, &writer, &inflight, ctx);
                }
                Err(message) => {
                    ctx.counters.bump(&ctx.counters.rejected);
                    respond(&writer, msg.id, Outcome::Err { message });
                }
            },
            Ok(Some(Message::Shutdown)) => {
                {
                    let mut w = writer.lock().expect("connection writer");
                    let _ = proto::write_message(&mut *w, &Message::ShutdownAck);
                }
                ctx.shutdown.store(true, Ordering::SeqCst);
                // Unblock the blocking accept loop with a self-connection.
                let _ = connect(ctx.local);
                // Keep reading: the client closes after the ack, and any
                // in-flight responses still flow through the writer.
            }
            Ok(Some(other)) => {
                // A server never receives responses or acks; drop the
                // connection rather than guess at the peer's state.
                let _ = other;
                break;
            }
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                ctx.counters.bump(&ctx.counters.reaped);
                break;
            }
            Ok(None) | Err(_) => break,
        }
    }
}

/// Admission control for one validated request: quarantine pre-check,
/// injected drop, per-connection in-flight cap, then the bounded queue.
/// Every path answers the client except an injected drop (whose whole
/// point is to exercise the client's retry timeout).
fn admit(
    msg: &RequestMsg,
    request: Request,
    backend: &'static Registration,
    writer: &Arc<Mutex<Stream>>,
    inflight: &Arc<AtomicI64>,
    ctx: &ReaderCtx<'_>,
) {
    if let Some(log) = ctx.arrivals {
        log.lock().expect("arrival trace").push(Instant::now());
    }
    let key = (request.family, request.n, request.dtype, backend.name());
    if ctx.quarantine.is_quarantined(&key) {
        ctx.counters.bump(&ctx.counters.quarantined);
        respond(
            writer,
            msg.id,
            Outcome::Failed {
                message: "signature quarantined after repeated execution failures".to_string(),
            },
        );
        return;
    }
    if ctx.injector.is_some_and(|i| i.should_drop(msg.id)) {
        return;
    }
    if ctx.max_inflight > 0 && inflight.load(Ordering::Relaxed) >= ctx.max_inflight as i64 {
        ctx.counters.bump(&ctx.counters.shed);
        respond(writer, msg.id, Outcome::Busy { retry_after_us: ctx.retry_after_us });
        return;
    }
    let deadline =
        (msg.deadline_us > 0).then(|| Instant::now() + Duration::from_micros(msg.deadline_us));
    inflight.fetch_add(1, Ordering::Relaxed);
    let job = ServerJob {
        writer: writer.clone(),
        id: msg.id,
        request,
        backend,
        at: Instant::now(),
        deadline,
        inflight: inflight.clone(),
    };
    match ctx.queue.submit(key, job) {
        SubmitOutcome::Queued => {}
        SubmitOutcome::Shed => {
            inflight.fetch_sub(1, Ordering::Relaxed);
            ctx.counters.bump(&ctx.counters.shed);
            respond(writer, msg.id, Outcome::Busy { retry_after_us: ctx.retry_after_us });
        }
        SubmitOutcome::Closed => {
            inflight.fetch_sub(1, Ordering::Relaxed);
            ctx.counters.bump(&ctx.counters.rejected);
            respond(
                writer,
                msg.id,
                Outcome::Err { message: "server is shutting down".to_string() },
            );
        }
    }
}

/// Validate one wire request against the served configuration. The
/// error string travels back to the client verbatim in an error
/// response.
fn validate(
    msg: &RequestMsg,
    regs: &[&'static Registration],
) -> Result<(Request, &'static Registration), String> {
    let family = Family::from_id(&msg.family)
        .ok_or_else(|| format!("unknown request family `{}`", msg.family))?;
    if msg.n < 2 || msg.n > 4096 {
        return Err(format!("operand size {} out of range [2, 4096]", msg.n));
    }
    let reg = regs.iter().find(|r| r.name() == msg.backend).copied().ok_or_else(|| {
        let names: Vec<&str> = regs.iter().map(|r| r.name()).collect();
        format!("backend `{}` is not served here (serving: {})", msg.backend, names.join(", "))
    })?;
    if !reg.supports(msg.dtype) {
        return Err(format!(
            "backend `{}` does not support dtype {}",
            msg.backend,
            msg.dtype.name()
        ));
    }
    Ok((Request { family, n: msg.n as usize, dtype: msg.dtype, payload: msg.payload }, reg))
}

/// Write one response frame (best-effort: a vanished client only loses
/// its own responses).
fn respond(writer: &Arc<Mutex<Stream>>, id: u64, outcome: Outcome) {
    let mut w = writer.lock().expect("connection writer");
    let _ = proto::write_message(&mut *w, &Message::Response(ResponseMsg { id, outcome }));
}

/// Fetch (or lazily build) the operand pool for `(family, n)`.
fn pool_for(
    pools: &Mutex<HashMap<(Family, usize), Arc<PoolPair>>>,
    family: Family,
    n: usize,
    seed: u64,
) -> Arc<PoolPair> {
    if let Some(p) = pools.lock().expect("pool map").get(&(family, n)) {
        return p.clone();
    }
    // Built outside the lock: two racing executors may build the same
    // pool, but both builds are deterministic and the map keeps one.
    let built =
        Arc::new(PoolPair { f64: family.env::<f64>(n, seed), f32: family.env::<f32>(n, seed) });
    pools.lock().expect("pool map").entry((family, n)).or_insert(built).clone()
}

/// Execute one admitted batch and answer every request in it. The
/// robustness gauntlet runs first: expired jobs are answered
/// `Expired` without compute, injected delays stretch the batch (and
/// may expire more jobs), a quarantined signature is refused
/// wholesale, and the execution itself runs under `catch_unwind` so a
/// panicking kernel answers `Failed` instead of killing the executor.
#[allow(clippy::too_many_arguments)]
fn execute_batch(
    batch: &FlushedBatch<ServerJob>,
    cache: &PlanCache,
    fw: &Framework,
    pools: &Mutex<HashMap<(Family, usize), Arc<PoolPair>>>,
    seed: u64,
    counters: &Counters,
    quarantine: &Quarantine,
    injector: Option<&FaultInjector>,
) {
    let start = Instant::now();
    let mut live = expire(batch.items.iter().collect(), counters);
    if let Some(inj) = injector {
        if let Some(delay) = live.iter().filter_map(|j| inj.delay_for(j.id)).max() {
            std::thread::sleep(delay);
            live = expire(live, counters);
        }
    }
    let Some(job0) = live.first() else { return };
    let req0 = &job0.request;
    let key = (req0.family, req0.n, req0.dtype, job0.backend.name());
    if quarantine.is_quarantined(&key) {
        for job in &live {
            counters.bump(&counters.quarantined);
            job.finish(Outcome::Failed {
                message: "signature quarantined after repeated execution failures".to_string(),
            });
        }
        return;
    }
    // Decide panics up front: `should_panic` counts each firing id, and
    // one firing poisons the whole coalesced batch (it shares one
    // execution).
    let mut boom = false;
    if let Some(inj) = injector {
        for job in &live {
            if inj.should_panic(job.id) {
                boom = true;
            }
        }
    }
    let pool = pool_for(pools, req0.family, req0.n, seed);
    let computed = match req0.dtype {
        Dtype::F64 => execute_typed::<f64>(&live, &pool.f64, cache, fw, seed, boom),
        Dtype::F32 => execute_typed::<f32>(&live, &pool.f32, cache, fw, seed, boom),
    };
    match computed {
        Ok((checksums, share)) => {
            let occ = live.len() as u32;
            for (j, job) in live.iter().enumerate() {
                let mut checksum = checksums[j];
                if injector.is_some_and(|i| i.should_corrupt(job.id)) {
                    checksum ^= CORRUPT_MASK;
                }
                counters.bump(&counters.served);
                job.finish(Outcome::Ok {
                    queue_ns: start.duration_since(job.at).as_nanos() as u64,
                    exec_ns: share,
                    occupancy: occ,
                    flush: batch.kind,
                    checksum,
                });
            }
        }
        Err(message) => {
            quarantine.record_failure(key);
            for job in &live {
                counters.bump(&counters.failed);
                job.finish(Outcome::Failed { message: message.clone() });
            }
        }
    }
}

/// Answer every past-deadline job with `Expired` and return the
/// still-live remainder (arrival order preserved).
fn expire<'a>(jobs: Vec<&'a ServerJob>, counters: &Counters) -> Vec<&'a ServerJob> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        match job.deadline {
            Some(dl) if now > dl => {
                counters.bump(&counters.expired);
                job.finish(Outcome::Expired { waited_us: job.at.elapsed().as_micros() as u64 });
            }
            _ => live.push(job),
        }
    }
    live
}

/// The typed half of [`execute_batch`]: bind envs, one cache lookup,
/// one batched execution (solo at occupancy 1 — bitwise identical to
/// the in-process loop for any backend) under `catch_unwind`. Returns
/// the per-request checksums and execution share, or the panic message
/// — responses are written by the caller, outside the unwind boundary.
fn execute_typed<T: BackendScalar>(
    jobs: &[&ServerJob],
    pool_env: &Env<T>,
    cache: &PlanCache,
    fw: &Framework,
    seed: u64,
    boom: bool,
) -> Result<(Vec<u64>, u64), String> {
    let occ = jobs.len();
    let req0 = &jobs[0].request;
    let reg = jobs[0].backend;
    let has_payload = !req0.family.payload_operands().is_empty();
    let owned: Vec<Env<T>> = if has_payload {
        jobs.iter().map(|j| j.request.env_from_pool(pool_env, seed)).collect()
    } else {
        Vec::new()
    };
    let refs: Vec<&Env<T>> =
        if has_payload { owned.iter().collect() } else { jobs.iter().map(|_| pool_env).collect() };
    let t_exec = Instant::now();
    let (plan, _) = cache.get_or_compile(req0.signature(reg.id()), || {
        Plan::compile_with_varying(
            fw,
            &req0.family.expr(req0.n),
            &req0.family.ctx(req0.n),
            reg,
            req0.family.varying_operands(),
        )
    });
    // Nothing inside the closure holds a lock the rest of the server
    // needs: the plan is an owned handle out of the cache, and the
    // response writer mutexes are only taken by the caller afterwards —
    // an unwind here cannot poison shared state.
    let computed = catch_unwind(AssertUnwindSafe(|| {
        if boom {
            panic!("injected fault: panic");
        }
        if occ >= 2 {
            plan.execute_batched::<T>(&refs)
        } else {
            vec![plan.execute::<T>(refs[0])]
        }
    }));
    match computed {
        Ok(results) => {
            let share = t_exec.elapsed().as_nanos() as u64 / occ as u64;
            Ok((results.iter().map(|r| proto::result_checksum(r)).collect(), share))
        }
        Err(payload) => Err(panic_message(&payload)),
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("execution panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("execution panicked: {s}")
    } else {
        "execution panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_specs_parse_and_display() {
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Listen::parse("/tmp/x.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7070").unwrap(),
            Listen::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(Listen::parse("127.0.0.1:7070").unwrap(), Listen::Tcp("127.0.0.1:7070".into()));
        assert_eq!(Listen::parse("unix:").unwrap_err(), ServeError::BadListen("unix:".into()));
        assert_eq!(Listen::parse("tcp:").unwrap_err(), ServeError::BadListen("tcp:".into()));
        assert_eq!(
            Listen::parse("nonsense").unwrap_err(),
            ServeError::BadListen("nonsense".into())
        );
        assert_eq!(Listen::parse("unix:/a").unwrap().display(), "unix:/a");
        assert_eq!(Listen::parse("tcp:h:1").unwrap().display(), "tcp:h:1");
    }

    #[test]
    fn bind_validates_like_the_builder() {
        let cfg = ServeConfig { batch_deadline_us: 0, ..ServeConfig::smoke() };
        assert_eq!(
            Server::bind("unix:/tmp/never-bound.sock", &cfg).err(),
            Some(ServeError::MissingDeadline { window: cfg.batch_window })
        );
        let cfg = ServeConfig { backends: vec!["cuda".into()], ..ServeConfig::smoke() };
        assert!(matches!(
            Server::bind("unix:/tmp/never-bound.sock", &cfg),
            Err(ServeError::UnknownBackend { .. })
        ));
        let cfg = ServeConfig { shards: 0, ..ServeConfig::smoke() };
        assert_eq!(
            Server::bind("unix:/tmp/never-bound.sock", &cfg).err(),
            Some(ServeError::ZeroShards)
        );
    }

    #[test]
    fn validate_rejects_with_messages_not_panics() {
        let regs = resolve_backends(&["seed".to_string()]).unwrap();
        let msg = |family: &str, n: u64, backend: &str| RequestMsg {
            id: 0,
            family: family.to_string(),
            n,
            dtype: Dtype::F64,
            backend: backend.to_string(),
            payload: 0,
            deadline_us: 0,
        };
        assert!(validate(&msg("chain", 16, "seed"), &regs).is_ok());
        assert!(validate(&msg("no_such", 16, "seed"), &regs)
            .unwrap_err()
            .contains("unknown request family"));
        assert!(validate(&msg("chain", 1, "seed"), &regs).unwrap_err().contains("out of range"));
        assert!(validate(&msg("chain", 1 << 40, "seed"), &regs)
            .unwrap_err()
            .contains("out of range"));
        let err = validate(&msg("chain", 16, "engine"), &regs).unwrap_err();
        assert!(err.contains("not served here") && err.contains("seed"), "{err}");
    }
}
