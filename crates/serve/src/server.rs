//! The blocking network server: listener → admission → batch → backend.
//!
//! `laab serve --listen <addr>` runs this front-end. The dataflow is the
//! same three layers the in-process loop composes, with the generator
//! replaced by sockets:
//!
//! ```text
//!  connections ──► reader threads ──► AdmissionQueue ──► executor pool
//!  (unix/tcp)      (decode+validate)  (deadline|occupancy)  (plan cache
//!                                                           → backend)
//! ```
//!
//! One reader thread per accepted connection decodes
//! [`proto`] frames, validates each request against the
//! served backend set (unknown family/backend, unsupported dtype, and
//! out-of-range sizes are *rejected with a response frame*, never a
//! panic), and submits jobs keyed by `(family, n, dtype, backend)` —
//! exactly what determines the plan-cache [`Signature`](crate::Signature).
//! A pool of executor threads (the `clients` count of the in-process
//! loop) drains whole batches through the shared [`PlanCache`] and
//! writes one response frame per request, carrying the measured queue
//! delay, the per-request execution share, the batch occupancy and
//! [`FlushKind`](crate::FlushKind), and a [checksum](crate::proto::result_checksum)
//! of the result matrices for client-side bitwise validation.
//!
//! Shutdown is graceful and in-band: a [`Message::Shutdown`] frame is
//! acknowledged immediately, the listener stops accepting, readers drain
//! to EOF, the admission queue flushes its partial groups, executors
//! finish the backlog, and — for unix sockets — the socket file is
//! removed. [`Server::run`] then returns the run's [`ServerStats`].

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use laab_backend::{BackendScalar, Dtype, Registration};
use laab_expr::eval::Env;
use laab_framework::Framework;

use crate::admission::{AdmissionQueue, AdmissionStats, FlushedBatch};
use crate::bench::{resolve_backends, ServeConfig, ServeError};
use crate::cache::PlanCache;
use crate::plan::Plan;
use crate::proto::{self, Message, Outcome, RequestMsg, ResponseMsg};
use crate::workload::{Family, Request};

/// A parsed listen/connect address: a unix socket path or a TCP
/// host:port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl Listen {
    /// Parse an address spec. Accepted forms: `unix:<path>`,
    /// `tcp:<host:port>`, a bare path containing `/` (unix), or a bare
    /// `host:port` (TCP).
    pub fn parse(spec: &str) -> Result<Listen, ServeError> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ServeError::BadListen(spec.to_string()));
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() || !addr.contains(':') {
                return Err(ServeError::BadListen(spec.to_string()));
            }
            return Ok(Listen::Tcp(addr.to_string()));
        }
        if spec.contains('/') {
            return Ok(Listen::Unix(PathBuf::from(spec)));
        }
        if spec.contains(':') {
            return Ok(Listen::Tcp(spec.to_string()));
        }
        Err(ServeError::BadListen(spec.to_string()))
    }

    /// The canonical `unix:`/`tcp:`-prefixed spelling.
    pub fn display(&self) -> String {
        match self {
            Listen::Unix(p) => format!("unix:{}", p.display()),
            Listen::Tcp(a) => format!("tcp:{a}"),
        }
    }
}

/// One established connection, either flavor. Cloned once per
/// connection: the original feeds the reader, the clone (behind a
/// mutex) is shared by the executors writing responses.
pub(crate) enum Stream {
    /// A unix-domain stream.
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Connect to a listening server (used by the load generator and by the
/// server itself to unblock its own accept loop at shutdown).
pub(crate) fn connect(addr: &Listen) -> Result<Stream, ServeError> {
    let wrap =
        |e: std::io::Error| ServeError::Connect { addr: addr.display(), source: Arc::new(e) };
    match addr {
        Listen::Unix(path) => UnixStream::connect(path).map(Stream::Unix).map_err(wrap),
        Listen::Tcp(spec) => TcpStream::connect(spec.as_str()).map(Stream::Tcp).map_err(wrap),
    }
}

enum ListenerKind {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl ListenerKind {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (the shutdown-unblocking self-connection is
    /// not counted).
    pub connections: u64,
    /// Requests executed and answered with an `Ok` response.
    pub served: u64,
    /// Requests answered with an error response (validation failures,
    /// submits after close).
    pub rejected: u64,
    /// The admission queue's flush counters.
    pub admission: AdmissionStats,
}

/// One validated request waiting in the admission queue.
struct ServerJob {
    writer: Arc<Mutex<Stream>>,
    id: u64,
    request: Request,
    backend: &'static Registration,
    at: Instant,
}

/// Per-`(family, n)` operand pools, built lazily as signatures appear.
struct PoolPair {
    f64: Env<f64>,
    f32: Env<f32>,
}

/// The blocking serving front-end. Construct with [`Server::bind`], then
/// [`Server::run`] until a client sends [`Message::Shutdown`].
pub struct Server {
    local: Listen,
    listener: ListenerKind,
    cfg: ServeConfig,
    regs: Vec<&'static Registration>,
}

impl Server {
    /// Bind the listener. Validates the config the way the builder does
    /// — backend names, shard count, window/deadline coherence — because
    /// a live server with a coalescing window and no deadline would hold
    /// lonely requests forever.
    ///
    /// # Errors
    /// Config rejections ([`ServeError::UnknownBackend`] etc.,
    /// [`ServeError::ZeroShards`], [`ServeError::MissingDeadline`]),
    /// [`ServeError::BadListen`] for an unintelligible address, and
    /// [`ServeError::Bind`] when the OS refuses the socket.
    pub fn bind(spec: &str, cfg: &ServeConfig) -> Result<Server, ServeError> {
        let addr = Listen::parse(spec)?;
        let regs = resolve_backends(&cfg.backends)?;
        if cfg.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if cfg.batching_enabled() && cfg.batch_deadline_us == 0 {
            return Err(ServeError::MissingDeadline { window: cfg.batch_window });
        }
        let wrap =
            |e: std::io::Error| ServeError::Bind { addr: addr.display(), source: Arc::new(e) };
        let (listener, local) = match &addr {
            Listen::Unix(path) => {
                (ListenerKind::Unix(UnixListener::bind(path).map_err(wrap)?), addr.clone())
            }
            Listen::Tcp(spec) => {
                let l = TcpListener::bind(spec.as_str()).map_err(wrap)?;
                // Report the resolved address, so `tcp:127.0.0.1:0`
                // (ephemeral port) is connectable from the returned spec.
                let local = l
                    .local_addr()
                    .map(|a| Listen::Tcp(a.to_string()))
                    .unwrap_or_else(|_| addr.clone());
                (ListenerKind::Tcp(l), local)
            }
        };
        Ok(Server { local, listener, cfg: cfg.clone(), regs })
    }

    /// The bound address in canonical `unix:`/`tcp:` form (for TCP, with
    /// the ephemeral port resolved).
    pub fn local_addr(&self) -> String {
        self.local.display()
    }

    /// Serve until a client sends [`Message::Shutdown`], then drain and
    /// return the stats. Blocking: readers, executors, and the accept
    /// loop all run on scoped threads inside this call. On a unix
    /// listener the socket file is removed before returning — a clean
    /// shutdown leaks nothing.
    ///
    /// # Errors
    /// [`ServeError::Accept`] if the listener itself fails (individual
    /// connection failures only drop that connection).
    pub fn run(self) -> Result<ServerStats, ServeError> {
        let Server { local, listener, cfg, regs } = self;
        let queue: AdmissionQueue<(Family, usize, Dtype, &'static str), ServerJob> =
            AdmissionQueue::new(cfg.batch_window, cfg.deadline());
        let cache = PlanCache::with_shards(cfg.cache_capacity.max(1) * regs.len(), cfg.shards);
        let fw = Framework::flow();
        let pools: Mutex<HashMap<(Family, usize), Arc<PoolPair>>> = Mutex::new(HashMap::new());
        let shutdown = AtomicBool::new(false);
        let served = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let mut connections = 0u64;
        let mut accept_err: Option<ServeError> = None;

        std::thread::scope(|scope| {
            let mut executors = Vec::new();
            for _ in 0..cfg.resolved_clients() {
                let (queue, cache, fw, pools, served) = (&queue, &cache, &fw, &pools, &served);
                let seed = cfg.seed;
                executors.push(scope.spawn(move || {
                    while let Some(batch) = queue.next_batch() {
                        let n = batch.items.len() as u64;
                        execute_batch(&batch, cache, fw, pools, seed);
                        served.fetch_add(n, Ordering::Relaxed);
                    }
                }));
            }

            let mut readers = Vec::new();
            loop {
                let stream = match listener.accept() {
                    Ok(s) => s,
                    Err(e) => {
                        if !shutdown.load(Ordering::SeqCst) {
                            accept_err = Some(ServeError::Accept(Arc::new(e)));
                        }
                        break;
                    }
                };
                if shutdown.load(Ordering::SeqCst) {
                    // The self-connection that unblocked accept; drop it.
                    break;
                }
                connections += 1;
                let (queue, regs, shutdown, local, rejected) =
                    (&queue, &regs, &shutdown, &local, &rejected);
                readers.push(scope.spawn(move || {
                    reader_loop(stream, queue, regs, shutdown, local, rejected);
                }));
            }

            // Readers exit at their client's EOF; only then is the queue
            // closed, so no accepted request is dropped un-answered.
            for r in readers {
                let _ = r.join();
            }
            queue.close();
            for e in executors {
                let _ = e.join();
            }
        });

        if let Listen::Unix(path) = &local {
            let _ = std::fs::remove_file(path);
        }
        if let Some(e) = accept_err {
            return Err(e);
        }
        Ok(ServerStats {
            connections,
            served: served.load(Ordering::Relaxed),
            rejected: rejected.load(Ordering::Relaxed),
            admission: queue.stats(),
        })
    }
}

/// Answer one connection: decode frames, validate, submit; on
/// [`Message::Shutdown`], ack, stop the acceptor, and drain to EOF. A
/// malformed frame drops the connection (the stream position is
/// unrecoverable) without touching the rest of the server.
fn reader_loop(
    stream: Stream,
    queue: &AdmissionQueue<(Family, usize, Dtype, &'static str), ServerJob>,
    regs: &[&'static Registration],
    shutdown: &AtomicBool,
    local: &Listen,
    rejected: &AtomicU64,
) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        match proto::read_message(&mut reader) {
            Ok(Some(Message::Request(msg))) => match validate(&msg, regs) {
                Ok((request, backend)) => {
                    let key = (request.family, request.n, request.dtype, backend.name());
                    let job = ServerJob {
                        writer: writer.clone(),
                        id: msg.id,
                        request,
                        backend,
                        at: Instant::now(),
                    };
                    if !queue.submit(key, job) {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        respond(
                            &writer,
                            msg.id,
                            Outcome::Err { message: "server is shutting down".to_string() },
                        );
                    }
                }
                Err(message) => {
                    rejected.fetch_add(1, Ordering::Relaxed);
                    respond(&writer, msg.id, Outcome::Err { message });
                }
            },
            Ok(Some(Message::Shutdown)) => {
                {
                    let mut w = writer.lock().expect("connection writer");
                    let _ = proto::write_message(&mut *w, &Message::ShutdownAck);
                }
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the blocking accept loop with a self-connection.
                let _ = connect(local);
                // Keep reading: the client closes after the ack, and any
                // in-flight responses still flow through the writer.
            }
            Ok(Some(other)) => {
                // A server never receives responses or acks; drop the
                // connection rather than guess at the peer's state.
                let _ = other;
                break;
            }
            Ok(None) | Err(_) => break,
        }
    }
}

/// Validate one wire request against the served configuration. The
/// error string travels back to the client verbatim in an error
/// response.
fn validate(
    msg: &RequestMsg,
    regs: &[&'static Registration],
) -> Result<(Request, &'static Registration), String> {
    let family = Family::from_id(&msg.family)
        .ok_or_else(|| format!("unknown request family `{}`", msg.family))?;
    if msg.n < 2 || msg.n > 4096 {
        return Err(format!("operand size {} out of range [2, 4096]", msg.n));
    }
    let reg = regs.iter().find(|r| r.name() == msg.backend).copied().ok_or_else(|| {
        let names: Vec<&str> = regs.iter().map(|r| r.name()).collect();
        format!("backend `{}` is not served here (serving: {})", msg.backend, names.join(", "))
    })?;
    if !reg.supports(msg.dtype) {
        return Err(format!(
            "backend `{}` does not support dtype {}",
            msg.backend,
            msg.dtype.name()
        ));
    }
    Ok((Request { family, n: msg.n as usize, dtype: msg.dtype, payload: msg.payload }, reg))
}

/// Write one response frame (best-effort: a vanished client only loses
/// its own responses).
fn respond(writer: &Arc<Mutex<Stream>>, id: u64, outcome: Outcome) {
    let mut w = writer.lock().expect("connection writer");
    let _ = proto::write_message(&mut *w, &Message::Response(ResponseMsg { id, outcome }));
}

/// Fetch (or lazily build) the operand pool for `(family, n)`.
fn pool_for(
    pools: &Mutex<HashMap<(Family, usize), Arc<PoolPair>>>,
    family: Family,
    n: usize,
    seed: u64,
) -> Arc<PoolPair> {
    if let Some(p) = pools.lock().expect("pool map").get(&(family, n)) {
        return p.clone();
    }
    // Built outside the lock: two racing executors may build the same
    // pool, but both builds are deterministic and the map keeps one.
    let built =
        Arc::new(PoolPair { f64: family.env::<f64>(n, seed), f32: family.env::<f32>(n, seed) });
    pools.lock().expect("pool map").entry((family, n)).or_insert(built).clone()
}

/// Execute one admitted batch and answer every request in it.
fn execute_batch(
    batch: &FlushedBatch<ServerJob>,
    cache: &PlanCache,
    fw: &Framework,
    pools: &Mutex<HashMap<(Family, usize), Arc<PoolPair>>>,
    seed: u64,
) {
    let start = Instant::now();
    let req0 = &batch.items[0].request;
    let pool = pool_for(pools, req0.family, req0.n, seed);
    match req0.dtype {
        Dtype::F64 => execute_typed::<f64>(batch, &pool.f64, cache, fw, seed, start),
        Dtype::F32 => execute_typed::<f32>(batch, &pool.f32, cache, fw, seed, start),
    }
}

/// The typed half of [`execute_batch`]: bind envs, one cache lookup,
/// one batched execution (solo at occupancy 1 — bitwise identical to
/// the in-process loop for any backend), respond per request.
fn execute_typed<T: BackendScalar>(
    batch: &FlushedBatch<ServerJob>,
    pool_env: &Env<T>,
    cache: &PlanCache,
    fw: &Framework,
    seed: u64,
    start: Instant,
) {
    let jobs = &batch.items;
    let occ = jobs.len();
    let req0 = &jobs[0].request;
    let reg = jobs[0].backend;
    let has_payload = !req0.family.payload_operands().is_empty();
    let owned: Vec<Env<T>> = if has_payload {
        jobs.iter().map(|j| j.request.env_from_pool(pool_env, seed)).collect()
    } else {
        Vec::new()
    };
    let refs: Vec<&Env<T>> =
        if has_payload { owned.iter().collect() } else { jobs.iter().map(|_| pool_env).collect() };
    let t_exec = Instant::now();
    let (plan, _) = cache.get_or_compile(req0.signature(reg.id()), || {
        Plan::compile_with_varying(
            fw,
            &req0.family.expr(req0.n),
            &req0.family.ctx(req0.n),
            reg,
            req0.family.varying_operands(),
        )
    });
    let results: Vec<Vec<laab_dense::Matrix<T>>> =
        if occ >= 2 { plan.execute_batched::<T>(&refs) } else { vec![plan.execute::<T>(refs[0])] };
    let share = t_exec.elapsed().as_nanos() as u64 / occ as u64;
    for (j, job) in jobs.iter().enumerate() {
        let outcome = Outcome::Ok {
            queue_ns: start.duration_since(job.at).as_nanos() as u64,
            exec_ns: share,
            occupancy: occ as u32,
            flush: batch.kind,
            checksum: proto::result_checksum(&results[j]),
        };
        respond(&job.writer, job.id, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_specs_parse_and_display() {
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Listen::parse("/tmp/x.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7070").unwrap(),
            Listen::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(Listen::parse("127.0.0.1:7070").unwrap(), Listen::Tcp("127.0.0.1:7070".into()));
        assert_eq!(Listen::parse("unix:").unwrap_err(), ServeError::BadListen("unix:".into()));
        assert_eq!(Listen::parse("tcp:").unwrap_err(), ServeError::BadListen("tcp:".into()));
        assert_eq!(
            Listen::parse("nonsense").unwrap_err(),
            ServeError::BadListen("nonsense".into())
        );
        assert_eq!(Listen::parse("unix:/a").unwrap().display(), "unix:/a");
        assert_eq!(Listen::parse("tcp:h:1").unwrap().display(), "tcp:h:1");
    }

    #[test]
    fn bind_validates_like_the_builder() {
        let cfg = ServeConfig { batch_deadline_us: 0, ..ServeConfig::smoke() };
        assert_eq!(
            Server::bind("unix:/tmp/never-bound.sock", &cfg).err(),
            Some(ServeError::MissingDeadline { window: cfg.batch_window })
        );
        let cfg = ServeConfig { backends: vec!["cuda".into()], ..ServeConfig::smoke() };
        assert!(matches!(
            Server::bind("unix:/tmp/never-bound.sock", &cfg),
            Err(ServeError::UnknownBackend { .. })
        ));
        let cfg = ServeConfig { shards: 0, ..ServeConfig::smoke() };
        assert_eq!(
            Server::bind("unix:/tmp/never-bound.sock", &cfg).err(),
            Some(ServeError::ZeroShards)
        );
    }

    #[test]
    fn validate_rejects_with_messages_not_panics() {
        let regs = resolve_backends(&["seed".to_string()]).unwrap();
        let msg = |family: &str, n: u64, backend: &str| RequestMsg {
            id: 0,
            family: family.to_string(),
            n,
            dtype: Dtype::F64,
            backend: backend.to_string(),
            payload: 0,
        };
        assert!(validate(&msg("chain", 16, "seed"), &regs).is_ok());
        assert!(validate(&msg("no_such", 16, "seed"), &regs)
            .unwrap_err()
            .contains("unknown request family"));
        assert!(validate(&msg("chain", 1, "seed"), &regs).unwrap_err().contains("out of range"));
        assert!(validate(&msg("chain", 1 << 40, "seed"), &regs)
            .unwrap_err()
            .contains("out of range"));
        let err = validate(&msg("chain", 16, "engine"), &regs).unwrap_err();
        assert!(err.contains("not served here") && err.contains("seed"), "{err}");
    }
}
