//! Canonical request signatures, the plan-cache key.
//!
//! `tf.function` keys its concrete-function cache on the *call signature*:
//! the traced Python function plus the argument specs (shape + dtype). The
//! analogue here is [`Signature`]: the callsite name, the canonical
//! rendering of the expression structure, every declared operand's shape
//! and property flags, the element dtype, and the execution backend the
//! plan targets. Equality is structural (the hash is only an
//! accelerator), so hash collisions can never alias two different
//! requests onto one plan.

use laab_backend::BackendId;
use laab_expr::{Context, Expr};

pub use laab_backend::Dtype;

/// The optimizer pipeline a plan is compiled through — part of the
/// signature (and the retrace key), because `--opt` A/B runs compile the
/// same request twice and the two plans must never alias.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// The trace-time graph passes alone (fold-transpose, CSE,
    /// scale-fusion, DCE) — the default, and the pre-e-graph behavior.
    #[default]
    Passes,
    /// Equality saturation first: the expression is interned into
    /// `laab-rewrite`'s e-graph, saturated with the bidirectional rule
    /// set, and the cheapest form under the measured-GFLOP/s cost model
    /// is extracted *before* tracing (so `BatchAnalysis` sees the
    /// normalized form); the graph passes then run as usual. On a
    /// saturation budget hit the plan falls back to the input expression
    /// and the serving report counts it.
    Egraph,
}

impl OptLevel {
    /// Every level, in CLI order.
    pub const ALL: [OptLevel; 2] = [OptLevel::Passes, OptLevel::Egraph];

    /// Stable lowercase identifier (CLI value, report field, hash input).
    pub fn id(self) -> &'static str {
        match self {
            OptLevel::Passes => "passes",
            OptLevel::Egraph => "egraph",
        }
    }

    /// Parse a CLI identifier.
    pub fn from_id(s: &str) -> Option<OptLevel> {
        OptLevel::ALL.into_iter().find(|l| l.id() == s)
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One declared operand inside a signature: name, shape, property bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OperandSig {
    name: String,
    rows: usize,
    cols: usize,
    props: u16,
}

/// The canonical signature of one request.
///
/// Covers everything that determines the compiled plan: the callsite
/// (`func`), the expression *structure* (canonical text, association
/// visible), each declared operand's shape and property flags (sorted by
/// name — [`Context`] iterates its `BTreeMap` in order), the dtype, and
/// the [`BackendId`] the plan is compiled for — one traced graph
/// dispatched to two backends is two cache entries, never one, so an
/// A/B run can't cross-hit. The 64-bit FNV-1a hash is stable across
/// processes and runs, so it can key on-disk artifacts too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    func: String,
    canon: String,
    operands: Vec<OperandSig>,
    dtype: Dtype,
    backend: BackendId,
    opt: OptLevel,
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over a byte slice.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Signature {
    /// Build the signature of calling `func` with `expr` over the operands
    /// declared in `ctx`, at element precision `dtype`, targeting
    /// `backend`, compiled at the default [`OptLevel::Passes`].
    ///
    /// Every operand declared in `ctx` participates (callers build one
    /// minimal context per request family), so an unused-but-declared
    /// operand changing shape is a retrace — exactly like passing a
    /// differently-shaped tensor to a `tf.function` parameter the traced
    /// body happens to ignore.
    pub fn new(func: &str, expr: &Expr, ctx: &Context, dtype: Dtype, backend: BackendId) -> Self {
        Self::with_opt(func, expr, ctx, dtype, backend, OptLevel::Passes)
    }

    /// [`Signature::new`] with an explicit optimizer level. The level is
    /// hashed and compared like every other component: an `--opt` A/B run
    /// compiles one request per level and the entries never alias.
    pub fn with_opt(
        func: &str,
        expr: &Expr,
        ctx: &Context,
        dtype: Dtype,
        backend: BackendId,
        opt: OptLevel,
    ) -> Self {
        let canon = expr.to_string();
        let mut operands = Vec::with_capacity(ctx.len());
        for name in ctx.names() {
            let info = ctx.expect(name);
            operands.push(OperandSig {
                name: name.to_string(),
                rows: info.shape.rows,
                cols: info.shape.cols,
                props: info.props.bits(),
            });
        }
        let mut h = FNV_OFFSET;
        h = fnv1a(h, func.as_bytes());
        h = fnv1a(h, &[0xff]);
        h = fnv1a(h, canon.as_bytes());
        for op in &operands {
            h = fnv1a(h, &[0xff]);
            h = fnv1a(h, op.name.as_bytes());
            h = fnv1a(h, &(op.rows as u64).to_le_bytes());
            h = fnv1a(h, &(op.cols as u64).to_le_bytes());
            h = fnv1a(h, &op.props.to_le_bytes());
        }
        h = fnv1a(h, &[0xff, if dtype == Dtype::F32 { 0x01 } else { 0x02 }]);
        h = fnv1a(h, &[0xff]);
        h = fnv1a(h, backend.name().as_bytes());
        h = fnv1a(h, &[0xff]);
        h = fnv1a(h, opt.id().as_bytes());
        Self { func: func.to_string(), canon, operands, dtype, backend, opt, hash: h }
    }

    /// The stable 64-bit hash (cache shard + bucket key; equality still
    /// compares the full signature).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The callsite identity (the "Python function" of the analogy) —
    /// the unit the retrace counter tracks.
    pub fn func(&self) -> &str {
        &self.func
    }

    /// The canonical expression structure.
    pub fn canon(&self) -> &str {
        &self.canon
    }

    /// The request's element precision.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// The execution backend the plan is compiled for.
    pub fn backend(&self) -> BackendId {
        self.backend
    }

    /// The optimizer pipeline the plan is compiled through.
    pub fn opt(&self) -> OptLevel {
        self.opt
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} [", self.func, self.canon)?;
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}x{}", op.name, op.rows, op.cols)?;
            if op.props != 0 {
                write!(f, "*")?;
            }
        }
        write!(f, "] {} @{} opt={}", self.dtype.name(), self.backend, self.opt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::{var, Props};

    fn ctx(n: usize) -> Context {
        Context::new().with("A", n, n).with("B", n, n)
    }

    #[test]
    fn equal_requests_have_equal_signatures() {
        let e = var("A").t() * var("B");
        let s1 = Signature::new("f", &e, &ctx(8), Dtype::F64, BackendId::ENGINE);
        let s2 = Signature::new("f", &e.clone(), &ctx(8), Dtype::F64, BackendId::ENGINE);
        assert_eq!(s1, s2);
        assert_eq!(s1.hash(), s2.hash());
    }

    #[test]
    fn every_component_changes_the_signature() {
        let e = var("A").t() * var("B");
        let base = Signature::new("f", &e, &ctx(8), Dtype::F64, BackendId::ENGINE);
        // Different callsite.
        assert_ne!(base, Signature::new("g", &e, &ctx(8), Dtype::F64, BackendId::ENGINE));
        // Different structure (association matters, like a retraced body).
        let re = var("A") * var("B");
        assert_ne!(base, Signature::new("f", &re, &ctx(8), Dtype::F64, BackendId::ENGINE));
        // Different shapes.
        assert_ne!(base, Signature::new("f", &e, &ctx(9), Dtype::F64, BackendId::ENGINE));
        // Different dtype.
        assert_ne!(base, Signature::new("f", &e, &ctx(8), Dtype::F32, BackendId::ENGINE));
        // Different backend: the A/B axis — one plan per backend.
        let seed = Signature::new("f", &e, &ctx(8), Dtype::F64, BackendId::SEED);
        assert_ne!(base, seed);
        assert_ne!(base.hash(), seed.hash());
        // Different property flags on an operand.
        let pctx = Context::new().with_props("A", 8, 8, Props::SYMMETRIC).with("B", 8, 8);
        assert_ne!(base, Signature::new("f", &e, &pctx, Dtype::F64, BackendId::ENGINE));
        // Different optimizer level: the --opt A/B axis — one plan per
        // level, never aliased.
        let eg =
            Signature::with_opt("f", &e, &ctx(8), Dtype::F64, BackendId::ENGINE, OptLevel::Egraph);
        assert_ne!(base, eg);
        assert_ne!(base.hash(), eg.hash());
        assert_eq!(base.opt(), OptLevel::Passes);
        assert_eq!(eg.opt(), OptLevel::Egraph);
    }

    #[test]
    fn opt_level_ids_round_trip() {
        for l in OptLevel::ALL {
            assert_eq!(OptLevel::from_id(l.id()), Some(l));
        }
        assert_eq!(OptLevel::from_id("nope"), None);
        assert_eq!(OptLevel::default(), OptLevel::Passes);
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // FNV-1a over fixed bytes: the constant below is the contract that
        // the hash never silently changes (it may key on-disk artifacts).
        let e = var("A") * var("B");
        let s = Signature::new("anchor", &e, &ctx(4), Dtype::F32, BackendId::ENGINE);
        assert_eq!(
            s.hash(),
            Signature::new("anchor", &e, &ctx(4), Dtype::F32, BackendId::ENGINE).hash()
        );
        assert_ne!(s.hash(), 0);
    }

    #[test]
    fn display_names_the_parts() {
        let e = var("A") * var("B");
        let s = Signature::new("fam", &e, &ctx(4), Dtype::F32, BackendId::SEED);
        let text = s.to_string();
        assert!(text.contains("fam"), "{text}");
        assert!(text.contains("A B"), "{text}");
        assert!(text.contains("4x4"), "{text}");
        assert!(text.contains("f32"), "{text}");
        assert!(text.contains("@seed"), "{text}");
        assert!(text.contains("opt=passes"), "{text}");
        assert_eq!(s.backend(), BackendId::SEED);
    }

    #[test]
    fn dtype_of_scalar() {
        assert_eq!(Dtype::of::<f32>(), Dtype::F32);
        assert_eq!(Dtype::of::<f64>(), Dtype::F64);
        assert_eq!(Dtype::F32.name(), "f32");
        assert_eq!(Dtype::F64.name(), "f64");
    }
}
