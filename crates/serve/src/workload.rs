//! Synthetic request families drawn from the paper's experiments.
//!
//! Each family is one callsite (one "decorated function"): a fixed
//! expression *structure* parameterized by the operand size `n` and the
//! element dtype. The mix reproduces the flavor of Experiments 1–5 —
//! the structures whose handling (or mishandling) the paper measures —
//! so the serving harness stresses the plan cache with exactly the
//! graphs the one-shot suite studies.

use laab_backend::BackendId;
use laab_dense::gen::OperandGen;
use laab_dense::Scalar;
use laab_expr::eval::Env;
use laab_expr::{elem, var, Context, Expr};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::signature::{Dtype, OptLevel, Signature};

/// One request family: a callsite with a fixed expression structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Experiment 1 (Table II): the CSE trap `(AᵀB)ᵀ(AᵀB)` — graph mode
    /// compiles the shared subexpression once.
    CseGram,
    /// Experiment 2 (Table III / Fig. 7): the left-associated chain
    /// `HᵀH x` the frameworks never re-parenthesize.
    Chain,
    /// Experiment 3 (Table IV): the Gram product `QᵀQ` (a symmetric
    /// result the frameworks compute with a full GEMM).
    Gram,
    /// Experiment 4 (Table V, Eq. 9): the slicing trap
    /// `(AB)[0,0]` — the full product is materialized for one element.
    Slice,
    /// Experiment 5 (Table V, Eq. 10): the distributivity trap
    /// `AB + AC`, which algebra would factor as `A(B + C)`.
    Distributive,
    /// The solve workload (ext_solve): the least-squares residual step
    /// `Hᵀ(y − Hx)` — the building block iterative solvers evaluate per
    /// step (the graph IR carries no factorization node, so serving
    /// exercises the residual evaluation, not the factorization).
    SolveResidual,
}

impl Family {
    /// Every family, in experiment order.
    pub const ALL: [Family; 6] = [
        Family::CseGram,
        Family::Chain,
        Family::Gram,
        Family::Slice,
        Family::Distributive,
        Family::SolveResidual,
    ];

    /// Stable identifier (report JSON, cache callsite).
    pub fn id(self) -> &'static str {
        match self {
            Family::CseGram => "cse_gram",
            Family::Chain => "chain",
            Family::Gram => "gram",
            Family::Slice => "slice",
            Family::Distributive => "distributive",
            Family::SolveResidual => "solve_residual",
        }
    }

    /// Resolve a wire/report identifier back to the family — the inverse
    /// of [`Family::id`], used by the network server to decode request
    /// frames. `None` for a callsite this build does not define (a
    /// structured rejection, not a panic).
    pub fn from_id(id: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.id() == id)
    }

    /// The paper experiment this family is drawn from.
    pub fn experiment(self) -> &'static str {
        match self {
            Family::CseGram => "E1/Table II (CSE)",
            Family::Chain => "E2/Table III (chains)",
            Family::Gram => "E3/Table IV (properties)",
            Family::Slice => "E4/Table V eq. 9 (slicing)",
            Family::Distributive => "E5/Table V eq. 10 (distributivity)",
            Family::SolveResidual => "ext_solve (solver residual)",
        }
    }

    /// The family's expression at operand size `n`.
    pub fn expr(self, n: usize) -> Expr {
        let _ = n; // only slicing indices could depend on n; keep 0,0
        match self {
            Family::CseGram => {
                let s = var("A").t() * var("B");
                s.clone().t() * s
            }
            Family::Chain => var("H").t() * var("H") * var("x"),
            Family::Gram => var("Q").t() * var("Q"),
            Family::Slice => elem(var("A") * var("B"), 0, 0),
            Family::Distributive => var("A") * var("B") + var("A") * var("C"),
            Family::SolveResidual => var("H").t() * (var("y") - var("H") * var("x")),
        }
    }

    /// The typing context for [`Family::expr`] at size `n`.
    pub fn ctx(self, n: usize) -> Context {
        match self {
            Family::CseGram | Family::Slice => Context::new().with("A", n, n).with("B", n, n),
            Family::Chain | Family::SolveResidual => {
                Context::new().with("H", n, n).with("x", n, 1).with("y", n, 1)
            }
            Family::Gram => Context::new().with("Q", n, n),
            Family::Distributive => Context::new().with("A", n, n).with("B", n, n).with("C", n, n),
        }
    }

    /// Reproducible operands for the family at size `n`. The same
    /// `(family, n, seed)` always yields the same data, so every client
    /// and every dtype sees consistent inputs.
    pub fn env<T: Scalar>(self, n: usize, seed: u64) -> Env<T> {
        let mut g = OperandGen::new(seed ^ ((self as u64) << 32) ^ (n as u64));
        let mut env = Env::new();
        let ctx = self.ctx(n);
        for name in ctx.names() {
            let shape = ctx.expect(name).shape;
            env.insert(name, g.matrix(shape.rows, shape.cols));
        }
        env
    }

    /// Operand names whose *values* differ request to request — the
    /// request payload, as opposed to the shared model operands every
    /// same-signature request binds identically. This is what the batched
    /// executor's [`laab_graph::BatchAnalysis`] takes as the varying set:
    /// the chain/solve families vary only their right-hand-side vectors
    /// (RHS-stackable), while the matrix families' whole operand set is
    /// per-request (no column-stacked form — they take the bitwise
    /// per-request fallback).
    pub fn varying_operands(self) -> &'static [&'static str] {
        match self {
            Family::CseGram | Family::Slice => &["A", "B"],
            Family::Chain => &["x"],
            Family::Gram => &["Q"],
            Family::Distributive => &["A", "B", "C"],
            Family::SolveResidual => &["x", "y"],
        }
    }

    /// The varying operands the harness actually re-draws per request:
    /// the `n×1` vector payloads. Matrix-shaped varying operands keep
    /// their pooled values (their families execute per request either
    /// way, so distinct values would change no work — only the operand
    /// pool's memory footprint).
    pub fn payload_operands(self) -> &'static [&'static str] {
        match self {
            Family::Chain => &["x"],
            Family::SolveResidual => &["x", "y"],
            _ => &[],
        }
    }
}

/// One synthetic serving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Which callsite the request hits.
    pub family: Family,
    /// Operand size.
    pub n: usize,
    /// Element precision.
    pub dtype: Dtype,
    /// Payload identity: requests with equal signatures but different
    /// payloads bind different vector operands (see
    /// [`Family::payload_operands`]) — the data a batched execution
    /// column-stacks.
    pub payload: u64,
}

impl Request {
    /// The request's plan-cache signature when dispatched to `backend`.
    /// One logical request driven through two backends yields two
    /// signatures — that is what keeps A/B cache entries independent.
    /// The payload does not participate: same shapes, same plan.
    pub fn signature(&self, backend: BackendId) -> Signature {
        self.signature_opt(backend, OptLevel::Passes)
    }

    /// [`Request::signature`] at an explicit optimizer level — the
    /// `--opt` A/B axis: one logical request compiled at two levels is
    /// two cache entries, exactly like the backend axis.
    pub fn signature_opt(&self, backend: BackendId, opt: OptLevel) -> Signature {
        Signature::with_opt(
            self.family.id(),
            &self.family.expr(self.n),
            &self.family.ctx(self.n),
            self.dtype,
            backend,
            opt,
        )
    }

    /// The request's operand bindings, derived from the shared pool env
    /// for `(family, n)` with this request's payload vectors drawn on
    /// top. Deterministic in `(request, seed)` — the batched and solo
    /// passes see identical data.
    pub fn env_from_pool<T: Scalar>(&self, base: &Env<T>, seed: u64) -> Env<T> {
        let mut env = base.clone();
        let ctx = self.family.ctx(self.n);
        for (k, name) in self.family.payload_operands().iter().enumerate() {
            let mut g = OperandGen::new(
                seed ^ self.payload.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((k as u64 + 1) << 56),
            );
            let shape = ctx.expect(name).shape;
            env.insert(name, g.matrix(shape.rows, shape.cols));
        }
        env
    }
}

/// Deterministically generate a mixed request stream.
///
/// Families and dtypes are drawn uniformly from a seeded RNG. Every
/// `churn_every`-th request (when non-zero) is a **churn** request: it
/// hits the [`Family::Chain`] callsite at one of four alternate sizes, so
/// a long stream keeps producing signature changes — the retrace traffic
/// of a service whose clients occasionally send new shapes — while the
/// overall distinct-signature count stays small enough that the steady
/// state is cache hits.
///
/// `dtype` pins every request to one precision (`None` = mixed). The RNG
/// is still consumed for the dtype draw, so two runs that differ only in
/// the filter see the *same* family/size sequence — dtype-restricted A/B
/// runs stay comparable request for request.
pub fn synthetic_mix(
    requests: usize,
    base_n: usize,
    seed: u64,
    churn_every: usize,
    dtype: Option<Dtype>,
) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mix = Vec::with_capacity(requests);
    for i in 0..requests {
        let churn = churn_every != 0 && (i + 1) % churn_every == 0;
        let family =
            if churn { Family::Chain } else { Family::ALL[rng.gen_range(0..Family::ALL.len())] };
        let n = if churn {
            // Cycle four alternate sizes so churn signatures repeat (and
            // eventually hit) rather than growing without bound.
            base_n + 8 * (1 + (i / churn_every) % 4)
        } else {
            base_n
        };
        let drawn = if rng.gen::<bool>() { Dtype::F64 } else { Dtype::F32 };
        mix.push(Request { family, n, dtype: dtype.unwrap_or(drawn), payload: i as u64 });
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::eval::eval;

    #[test]
    fn every_family_shape_checks_and_evaluates() {
        let n = 8;
        for family in Family::ALL {
            let expr = family.expr(n);
            let ctx = family.ctx(n);
            let shape = expr
                .try_shape(&ctx)
                .unwrap_or_else(|e| panic!("family {} fails shape check: {e:?}", family.id()));
            assert!(shape.rows >= 1 && shape.cols >= 1);
            let env = family.env::<f64>(n, 7);
            let value = eval(&expr, &env);
            assert_eq!((value.rows(), value.cols()), (shape.rows, shape.cols));
            assert!(!family.experiment().is_empty());
        }
    }

    #[test]
    fn envs_are_reproducible_and_size_distinct() {
        let e1 = Family::Gram.env::<f64>(10, 3);
        let e2 = Family::Gram.env::<f64>(10, 3);
        assert_eq!(e1.expect("Q"), e2.expect("Q"));
        let e3 = Family::Gram.env::<f64>(12, 3);
        assert_eq!(e3.expect("Q").shape(), (12, 12));
    }

    #[test]
    fn mix_is_deterministic_and_churns() {
        let m1 = synthetic_mix(64, 32, 11, 16, None);
        let m2 = synthetic_mix(64, 32, 11, 16, None);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 64);
        // Churn requests (every 16th) hit the chain family off-size.
        let churned: Vec<_> = m1.iter().filter(|r| r.n != 32).collect();
        assert_eq!(churned.len(), 4);
        assert!(churned.iter().all(|r| r.family == Family::Chain));
        // A different seed produces a different stream.
        assert_ne!(synthetic_mix(64, 32, 12, 16, None), m1);
        // churn_every = 0 disables churn.
        assert!(synthetic_mix(64, 32, 11, 0, None).iter().all(|r| r.n == 32));
    }

    #[test]
    fn dtype_filter_pins_precision_but_not_the_stream() {
        let mixed = synthetic_mix(64, 32, 11, 16, None);
        let f32_only = synthetic_mix(64, 32, 11, 16, Some(Dtype::F32));
        assert!(f32_only.iter().all(|r| r.dtype == Dtype::F32));
        assert!(mixed.iter().any(|r| r.dtype == Dtype::F64), "mixed stream has both dtypes");
        // The family/size sequence is identical: only the dtype differs.
        for (a, b) in mixed.iter().zip(&f32_only) {
            assert_eq!((a.family, a.n), (b.family, b.n));
        }
    }

    #[test]
    fn varying_and_payload_sets_are_consistent() {
        for family in Family::ALL {
            let ctx = family.ctx(8);
            let varying = family.varying_operands();
            assert!(!varying.is_empty(), "{}: some operand must vary per request", family.id());
            for name in family.payload_operands() {
                assert!(varying.contains(name), "{}: payloads are varying operands", family.id());
                assert_eq!(ctx.expect(name).shape.cols, 1, "{}: payloads are vectors", family.id());
            }
            for name in varying {
                assert!(ctx.names().any(|n| n == *name), "{}: `{name}` declared", family.id());
            }
        }
        // The GEMV-shaped families are the RHS-stackable ones.
        assert_eq!(Family::Chain.payload_operands(), ["x"]);
        assert_eq!(Family::SolveResidual.payload_operands(), ["x", "y"]);
    }

    #[test]
    fn payload_envs_vary_only_the_payload_operands() {
        let base = Family::SolveResidual.env::<f64>(10, 3);
        let mk =
            |payload| Request { family: Family::SolveResidual, n: 10, dtype: Dtype::F64, payload };
        let e1 = mk(1).env_from_pool(&base, 3);
        let e1b = mk(1).env_from_pool(&base, 3);
        let e2 = mk(2).env_from_pool(&base, 3);
        // Deterministic per payload; distinct across payloads; H shared.
        assert_eq!(e1.expect("x"), e1b.expect("x"));
        assert_ne!(e1.expect("x"), e2.expect("x"));
        assert_ne!(e1.expect("y"), e2.expect("y"));
        assert_ne!(e1.expect("x"), e1.expect("y"), "per-name payload streams are distinct");
        assert_eq!(e1.expect("H"), base.expect("H"));
        assert_eq!(e2.expect("H"), base.expect("H"));
        // Families without vector payloads reuse the pool env as-is.
        let gbase = Family::Gram.env::<f64>(10, 3);
        let g1 = Request { family: Family::Gram, n: 10, dtype: Dtype::F64, payload: 1 }
            .env_from_pool(&gbase, 3);
        assert_eq!(g1.expect("Q"), gbase.expect("Q"));
    }

    #[test]
    fn signatures_distinguish_families_sizes_dtypes_backends() {
        let r1 = Request { family: Family::Gram, n: 8, dtype: Dtype::F64, payload: 0 };
        let r2 = Request { family: Family::Gram, n: 8, dtype: Dtype::F32, payload: 0 };
        let r3 = Request { family: Family::Chain, n: 8, dtype: Dtype::F64, payload: 0 };
        let r4 = Request { family: Family::Gram, n: 10, dtype: Dtype::F64, payload: 0 };
        let mut sigs: Vec<u64> =
            [r1, r2, r3, r4].map(|r| r.signature(BackendId::ENGINE).hash()).to_vec();
        // The same requests through a second backend: all-new signatures.
        sigs.extend([r1, r2, r3, r4].map(|r| r.signature(BackendId::SEED).hash()));
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "requests {i} and {j} collide");
            }
        }
        assert_eq!(r1.signature(BackendId::ENGINE), r1.signature(BackendId::ENGINE));
        // Payloads are values, not shapes: they never change the signature
        // (that is exactly what makes the requests coalescible).
        let r5 = Request { payload: 99, ..r1 };
        assert_eq!(r1.signature(BackendId::ENGINE), r5.signature(BackendId::ENGINE));
    }
}
