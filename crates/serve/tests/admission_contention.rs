//! Admission-queue contention: barrier-synchronized producers hammer
//! `submit` while consumers race `next_batch` and a deadline timer
//! fires underneath them. The invariants under fire are the ones the
//! serving loop depends on: **no item is lost, none is duplicated**,
//! every batch is same-key, and the stats counters reconcile exactly
//! with what the threads observed.

use std::collections::HashSet;
use std::sync::{Barrier, Mutex};
use std::time::Duration;

use laab_serve::{AdmissionQueue, FlushKind};

/// Items are `(key, unique id)`; consumers record everything they pull.
type Item = (u64, u64);

struct Consumed {
    ids: Vec<u64>,
    batches: u64,
    kinds: [u64; 4],
}

fn kind_slot(kind: FlushKind) -> usize {
    match kind {
        FlushKind::Occupancy => 0,
        FlushKind::Deadline => 1,
        FlushKind::Drain => 2,
        FlushKind::Pressure => 3,
    }
}

/// Run `producers` × `per_producer` submits through a queue against
/// `consumers` concurrent `next_batch` loops, all released by one
/// barrier; close once every producer returns. Returns what the
/// consumers collectively pulled plus the per-producer shed count.
fn hammer(
    queue: &AdmissionQueue<u64, Item>,
    producers: usize,
    consumers: usize,
    per_producer: usize,
    keys: u64,
) -> (Consumed, u64) {
    let barrier = Barrier::new(producers + consumers);
    let consumed = Mutex::new(Consumed { ids: Vec::new(), batches: 0, kinds: [0; 4] });
    let mut shed = 0;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..producers {
            let (queue, barrier) = (&queue, &barrier);
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut shed = 0u64;
                for i in 0..per_producer {
                    let id = (p * per_producer + i) as u64;
                    if !queue.submit(id % keys, (id % keys, id)).is_queued() {
                        shed += 1;
                    }
                    // Stagger occasionally so deadline flushes get a
                    // chance to race occupancy flushes.
                    if i % 97 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                shed
            }));
        }
        for _ in 0..consumers {
            let (queue, barrier, consumed) = (&queue, &barrier, &consumed);
            scope.spawn(move || {
                barrier.wait();
                while let Some(batch) = queue.next_batch() {
                    assert!(!batch.items.is_empty(), "no empty batches");
                    let key = batch.items[0].0;
                    assert!(batch.items.iter().all(|(k, _)| *k == key), "a batch never mixes keys");
                    let mut c = consumed.lock().unwrap();
                    c.batches += 1;
                    c.kinds[kind_slot(batch.kind)] += 1;
                    c.ids.extend(batch.items.iter().map(|(_, id)| *id));
                }
            });
        }
        // Producers done → close; consumers drain the tail and exit on
        // `None`.
        shed = handles.into_iter().map(|h| h.join().expect("producer")).sum();
        queue.close();
    });
    (consumed.into_inner().unwrap(), shed)
}

/// Unbounded queue: every submitted item comes out exactly once, and
/// the stats ledger (admitted, per-kind flushes) matches the consumers'
/// own tally.
#[test]
fn concurrent_submit_and_flush_neither_loses_nor_duplicates() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 3;
    const PER_PRODUCER: usize = 600;
    let queue: AdmissionQueue<u64, Item> = AdmissionQueue::new(4, Some(Duration::from_micros(100)));

    let (consumed, shed) = hammer(&queue, PRODUCERS, CONSUMERS, PER_PRODUCER, 7);

    let total = (PRODUCERS * PER_PRODUCER) as u64;
    assert_eq!(shed, 0, "unbounded queue never sheds");
    assert_eq!(consumed.ids.len() as u64, total, "every item consumed");
    let unique: HashSet<u64> = consumed.ids.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "no item duplicated");

    let stats = queue.stats();
    assert_eq!(stats.admitted, total);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.batches(), consumed.batches, "ledger matches the consumers' count");
    assert_eq!(stats.occupancy_flushes, consumed.kinds[0]);
    assert_eq!(stats.deadline_flushes, consumed.kinds[1]);
    assert_eq!(stats.drain_flushes, consumed.kinds[2]);
    assert_eq!(stats.pressure_flushes, consumed.kinds[3]);
    assert!(stats.occupancy_flushes > 0, "full windows flushed");
    assert_eq!(queue.queued(), 0, "drained to empty");
}

/// Bounded queue under deliberate overrun: sheds happen, but the
/// conservation law still holds — admitted items all come out exactly
/// once, and admitted + shed accounts for every attempt.
#[test]
fn bounded_backlog_sheds_without_losing_admitted_items() {
    const PRODUCERS: usize = 6;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: usize = 500;
    // A tiny capacity against a producer horde: shedding is guaranteed,
    // and the half-capacity pressure regime is exercised constantly.
    let queue: AdmissionQueue<u64, Item> =
        AdmissionQueue::bounded(8, Some(Duration::from_micros(100)), 16);

    let (consumed, shed) = hammer(&queue, PRODUCERS, CONSUMERS, PER_PRODUCER, 5);

    let attempts = (PRODUCERS * PER_PRODUCER) as u64;
    assert!(shed > 0, "a 16-slot backlog against 3000 submits must shed");

    let stats = queue.stats();
    assert_eq!(stats.shed, shed, "queue ledger matches the producers' refusal count");
    assert_eq!(stats.admitted + stats.shed, attempts, "every attempt accounted for");
    assert_eq!(consumed.ids.len() as u64, stats.admitted, "every admitted item consumed");
    let unique: HashSet<u64> = consumed.ids.iter().copied().collect();
    assert_eq!(unique.len(), consumed.ids.len(), "no duplication under shedding");
    assert!(stats.pressure_flushes > 0, "half-capacity pressure flushes engaged");
    assert_eq!(stats.batches(), consumed.batches);
    assert_eq!(queue.queued(), 0);
}
