//! Deterministic fault-injection end-to-end: a `Server` with a seeded
//! [`FaultPlan`] on one thread, the load generator driving it over a
//! real unix socket from this one. Because fault decisions are a pure
//! hash of `(seed, kind, id)`, each test precomputes the exact id set
//! every fault will hit via [`FaultPlan::fires`] and asserts the
//! client report and server counters match it **exactly** — not
//! "roughly N% failed", but these ids and no others.
//!
//! The batch window is pinned to 1 throughout so request ↔ batch is
//! 1:1 and a panic poisons exactly its own request.

use std::collections::HashSet;

use laab_serve::loadgen::{self, Arrival, LoadgenConfig};
use laab_serve::workload::synthetic_mix;
use laab_serve::{Dtype, FaultKind, FaultPlan, ServeConfig, Server, ServerStats};
use laab_serve::{LoadgenReport, ServeError};

/// Keep injected executor panics out of the test's stderr: the default
/// hook prints a backtrace per firing, which is pure noise for a fault
/// the plan asked for. Anything else (a real bug, a failed assertion)
/// still reaches the previous hook untouched.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<&str>().is_some_and(|s| s.contains("injected fault"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Bind a unix-socket server with `cfg`, drive it with `lg`, and return
/// `(client report, server stats)` once both sides have shut down
/// cleanly. Panics if the server thread died — surviving injected
/// faults is itself an assertion of every test here.
fn drive(
    name: &str,
    cfg: ServeConfig,
    lg: impl FnOnce(&str) -> LoadgenConfig,
) -> (LoadgenReport, ServerStats) {
    silence_injected_panics();
    let path = std::env::temp_dir().join(format!("laab-fault-{name}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = Server::bind(&format!("unix:{}", path.display()), &cfg).expect("bind unix");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let report = loadgen::run(&lg(&addr)).expect("loadgen completes");

    let stats: Result<ServerStats, ServeError> =
        handle.join().expect("server thread survives injected faults");
    let stats = stats.expect("server run returns stats");
    assert!(!path.exists(), "clean shutdown removes the socket file");
    (report, stats)
}

/// The ids in `0..requests` that `kind` fires for under `plan`.
fn fired(plan: &FaultPlan, seed: u64, kind: FaultKind, requests: u64) -> HashSet<u64> {
    (0..requests).filter(|&id| plan.fires(seed, kind, id)).collect()
}

/// The headline acceptance test: seeded panic + delay + drop faults
/// over a unix socket. The server completes the run, every *completed*
/// response is bitwise-correct against the in-process oracle, and the
/// failed/retry/fault counters match the precomputed plan id-for-id.
#[test]
fn seeded_panic_delay_drop_counters_match_the_plan_exactly() {
    const REQUESTS: u64 = 64;
    let plan = FaultPlan::parse("panic:1/8,delay:1/4x300,drop:1/8").expect("plan parses");
    let seed = 0x1AAB;
    let panics = fired(&plan, seed, FaultKind::Panic, REQUESTS);
    let drops = fired(&plan, seed, FaultKind::Drop, REQUESTS);
    let delays = fired(&plan, seed, FaultKind::Delay, REQUESTS);
    // The test only means something if every fault actually fires.
    assert!(!panics.is_empty() && !drops.is_empty() && !delays.is_empty());
    assert_ne!(panics, drops, "kind salt separates the id sets");

    let cfg = ServeConfig::smoke_builder()
        .backends(["seed"])
        .batch_window(1)
        .quarantine_after(0) // isolate panic accounting from quarantine
        .faults(Some(plan))
        .build()
        .expect("config validates");
    let (report, stats) = drive("mix", cfg, |addr| {
        let mut lg = LoadgenConfig::smoke(addr);
        lg.requests = REQUESTS as usize;
        lg.connections = 2;
        lg.n = 16;
        // One closed-loop run: each wire id is sent exactly once (plus
        // retries of the same id), so fire-once faults map 1:1 to ids.
        lg.arrivals = vec![Arrival::Closed];
        lg
    });

    // Client side: panicked ids come back `Failed` (terminal); every
    // other id completes — dropped ids via timeout-retry of the same
    // id, which the fire-once injector lets through on the resend.
    let run = &report.runs[0];
    assert_eq!(run.failed, panics.len() as u64, "one Failed per panic-set id");
    assert_eq!(run.completed, REQUESTS - panics.len() as u64);
    assert_eq!(run.errors, 0, "no id is lost for good");
    assert_eq!(run.busy, 0);
    assert_eq!(run.expired, 0);
    assert!(run.retries >= drops.len() as u64, "every dropped id forces at least one resend");
    assert_eq!(run.checksum_mismatches, 0, "completed responses are bitwise-correct");
    assert_eq!(report.checksum_mismatches, 0);

    // Server side: the counters reproduce the plan exactly.
    assert_eq!(stats.failed, panics.len() as u64);
    assert_eq!(stats.served, REQUESTS - panics.len() as u64);
    assert_eq!(stats.faults.panics, panics.len() as u64);
    assert_eq!(stats.faults.drops, drops.len() as u64);
    assert_eq!(stats.faults.delays, delays.len() as u64, "every id reaches the executor once");
    assert_eq!(stats.faults.corrupts, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.quarantined, 0);
}

/// Corrupt faults flip checksums on otherwise-successful responses:
/// the verifier counts exactly the corrupt id set as mismatches, and
/// nothing is rejected — proving `--verify` measures completed
/// responses, not rejections.
#[test]
fn corrupt_faults_are_counted_as_mismatches_on_completed_responses() {
    const REQUESTS: u64 = 32;
    let plan = FaultPlan::parse("corrupt:1/2").expect("plan parses");
    let corrupts = fired(&plan, 0x1AAB, FaultKind::Corrupt, REQUESTS);
    assert!(!corrupts.is_empty() && corrupts.len() < REQUESTS as usize);

    let cfg = ServeConfig::smoke_builder()
        .backends(["seed"])
        .batch_window(1)
        .faults(Some(plan))
        .build()
        .expect("config validates");
    let (report, stats) = drive("corrupt", cfg, |addr| {
        let mut lg = LoadgenConfig::smoke(addr);
        lg.requests = REQUESTS as usize;
        lg.connections = 1;
        lg.n = 16;
        lg.arrivals = vec![Arrival::Closed];
        lg.max_retries = 0;
        lg
    });

    let run = &report.runs[0];
    assert_eq!(run.completed, REQUESTS, "corruption completes; it does not reject");
    assert_eq!(run.failed + run.busy + run.expired + run.errors, 0);
    assert_eq!(run.checksum_mismatches, corrupts.len() as u64, "exactly the corrupt set");
    assert_eq!(stats.faults.corrupts, corrupts.len() as u64);
    assert_eq!(stats.served, REQUESTS);
}

/// A universal 5 ms injected delay against a 1 ms request deadline:
/// every request expires server-side *before* execution, and the
/// verifier reports zero mismatches because nothing completed —
/// rejections are never counted against the bitwise check.
#[test]
fn deadlines_expire_delayed_requests_before_execution() {
    const REQUESTS: u64 = 12;
    let plan = FaultPlan::parse("delay:1/1x5000").expect("plan parses");

    let cfg = ServeConfig::smoke_builder()
        .backends(["seed"])
        .batch_window(1)
        .faults(Some(plan))
        .build()
        .expect("config validates");
    let (report, stats) = drive("expire", cfg, |addr| {
        let mut lg = LoadgenConfig::smoke(addr);
        lg.requests = REQUESTS as usize;
        lg.connections = 1;
        lg.n = 16;
        lg.arrivals = vec![Arrival::Closed];
        lg.deadline_us = 1_000;
        lg.max_retries = 0;
        lg
    });

    let run = &report.runs[0];
    assert_eq!(run.expired, REQUESTS, "every delayed request overstays its deadline");
    assert_eq!(run.completed, 0);
    assert_eq!(run.checksum_mismatches, 0, "nothing completed, nothing to mismatch");
    assert_eq!(stats.expired, REQUESTS);
    assert_eq!(stats.served, 0, "expiry is checked again after the delay, before execution");
    assert_eq!(stats.faults.delays, REQUESTS);
}

/// A burst of 8 into `--max-inflight 1` while the one admitted request
/// sits in a 20 ms injected delay: the reader sheds the other 7 with
/// `Busy` immediately (admission is per-connection in-flight, not
/// executor state), and with retries disabled the client records them
/// as terminal.
#[test]
fn inflight_cap_sheds_burst_overflow_with_busy() {
    const REQUESTS: u64 = 8;
    let plan = FaultPlan::parse("delay:1/1x20000").expect("plan parses");

    let cfg = ServeConfig::smoke_builder()
        .backends(["seed"])
        .batch_window(1)
        .max_inflight(1)
        .faults(Some(plan))
        .build()
        .expect("config validates");
    let (report, stats) = drive("busy", cfg, |addr| {
        let mut lg = LoadgenConfig::smoke(addr);
        lg.requests = REQUESTS as usize;
        lg.connections = 1;
        lg.n = 16;
        lg.arrivals = vec![Arrival::Bursty { rate: 2000.0, burst: REQUESTS as usize }];
        lg.max_retries = 0;
        lg
    });

    let run = &report.runs[0];
    assert_eq!(run.completed, 1, "only the head of the burst is admitted");
    assert_eq!(run.busy, REQUESTS - 1);
    assert_eq!(run.checksum_mismatches, 0);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.shed, REQUESTS - 1);
    assert_eq!(stats.faults.delays, 1, "shed requests never reach the executor");
}

/// Every execution panics and the quarantine threshold is 1: the first
/// request of each distinct signature fails in the executor, every
/// subsequent request of that signature is refused up front, and the
/// server still shuts down cleanly — the panic never kills a pool
/// thread. The split between executor failures and quarantine refusals
/// equals the mix's distinct-signature count exactly.
#[test]
fn quarantine_fences_repeatedly_failing_signatures() {
    const REQUESTS: usize = 24;
    const N: usize = 16;
    const CHURN: usize = 5;
    let plan = FaultPlan::parse("panic:1/1").expect("plan parses");
    let seed = 0x1AAB;

    // The quarantine key is (family, n, dtype, backend); backend is
    // constant here, so the client-side mix predicts the key count.
    let mix = synthetic_mix(REQUESTS, N, seed, CHURN, None);
    let distinct: HashSet<(_, usize, Dtype)> =
        mix.iter().map(|r| (r.family, r.n, r.dtype)).collect();
    let distinct = distinct.len() as u64;
    assert!(distinct > 1 && distinct < REQUESTS as u64, "mix repeats signatures");

    let cfg = ServeConfig::smoke_builder()
        .backends(["seed"])
        .batch_window(1)
        .quarantine_after(1)
        .faults(Some(plan))
        .build()
        .expect("config validates");
    let (report, stats) = drive("quarantine", cfg, |addr| {
        let mut lg = LoadgenConfig::smoke(addr);
        lg.requests = REQUESTS;
        lg.connections = 1;
        lg.n = N;
        lg.churn_every = CHURN;
        lg.arrivals = vec![Arrival::Closed];
        lg.max_retries = 0;
        lg.verify = false;
        lg
    });

    let run = &report.runs[0];
    assert_eq!(run.failed, REQUESTS as u64, "both refusal paths answer Failed");
    assert_eq!(run.completed, 0);
    assert_eq!(stats.served, 0);
    assert_eq!(stats.failed, distinct, "first request of each signature reaches the executor");
    assert_eq!(stats.quarantined, REQUESTS as u64 - distinct, "the rest are fenced at admission");
    assert_eq!(stats.faults.panics, distinct);
}
