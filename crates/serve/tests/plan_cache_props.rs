//! Property suite for the plan cache: a cache-hit execution must be
//! **bitwise-identical** to a cold trace, for random Experiment-1-style
//! expressions (products, sums, transposes, scalings over square
//! operands, optionally applied to a vector), at both precisions.

use laab_backend::registry;
use laab_dense::gen::OperandGen;
use laab_expr::eval::Env;
use laab_expr::{scale, var, Context, Expr};
use laab_framework::Framework;
use laab_serve::{BackendId, Dtype, Plan, PlanCache, Signature};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random shape-valid expression over square operands `A`, `B`, `H`
/// (all `n×n`), built by structural recursion so every draw type-checks.
/// This is the E1 grammar: the paper's Table I/II expressions are exactly
/// such combinations (`AᵀB`, `(AᵀB)ᵀ(AᵀB)`, sums and scalings thereof).
fn random_square_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        return var(["A", "B", "H"][rng.gen_range(0..3)]);
    }
    match rng.gen_range(0..6) {
        0 => random_square_expr(rng, depth - 1) * random_square_expr(rng, depth - 1),
        1 => random_square_expr(rng, depth - 1) + random_square_expr(rng, depth - 1),
        2 => random_square_expr(rng, depth - 1) - random_square_expr(rng, depth - 1),
        3 => random_square_expr(rng, depth - 1).t(),
        4 => scale(0.5 + rng.gen::<f64>(), random_square_expr(rng, depth - 1)),
        _ => var(["A", "B", "H"][rng.gen_range(0..3)]),
    }
}

fn random_request(seed: u64, depth: usize, n: usize) -> (Expr, Context) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut expr = random_square_expr(&mut rng, depth);
    let mut ctx = Context::new().with("A", n, n).with("B", n, n).with("H", n, n);
    // Half the draws end E1-style: the square combination applied to a
    // vector (the paper's `...· x` expressions).
    if rng.gen::<bool>() {
        expr = expr * var("x");
        ctx = ctx.with("x", n, 1);
    }
    (expr, ctx)
}

fn envs(n: usize, seed: u64) -> (Env<f64>, Env<f32>) {
    let mut g64 = OperandGen::new(seed);
    let mut g32 = OperandGen::new(seed);
    let mut e64 = Env::new();
    let mut e32 = Env::new();
    for name in ["A", "B", "H"] {
        e64.insert(name, g64.matrix(n, n));
        e32.insert(name, g32.matrix(n, n));
    }
    e64.insert("x", g64.matrix(n, 1));
    e32.insert("x", g32.matrix(n, 1));
    (e64, e32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property: for a random expression, execute a cold
    /// trace (fresh `Function::call`), then the same signature through
    /// the cache twice (compile, then hit). All three must agree **bit
    /// for bit** — a serving layer must never change results when it
    /// starts amortizing.
    #[test]
    fn cache_hit_is_bitwise_identical_to_cold_trace(
        seed in any::<u64>(),
        depth in 1usize..4,
        n in 3usize..12,
    ) {
        let (expr, ctx) = random_request(seed, depth, n);
        let (e64, e32) = envs(n, seed ^ 0xD1CE);
        let fw = Framework::flow();
        let cache = PlanCache::new(16);

        let cold64 = fw.function_from_expr(&expr, &ctx).call(&e64);
        let cold32 = fw.function_from_expr(&expr, &ctx).call(&e32);

        let sig64 = Signature::new("prop", &expr, &ctx, Dtype::F64, BackendId::ENGINE);
        let (plan, _) = cache.get_or_compile(sig64.clone(), || Plan::compile(&fw, &expr, &ctx, registry::default_backend()));
        prop_assert_eq!(&plan.execute::<f64>(&e64), &cold64, "compiled plan vs cold trace");

        // Second lookup must hit and stay bitwise identical.
        let (plan, lookup) =
            cache.get_or_compile(sig64, || panic!("second lookup must not recompile"));
        prop_assert_eq!(lookup, laab_serve::Lookup::Hit);
        prop_assert_eq!(&plan.execute::<f64>(&e64), &cold64, "cache hit vs cold trace");

        // The f32 path is a *different* signature (dtype retrace) with
        // the same guarantee.
        let sig32 = Signature::new("prop", &expr, &ctx, Dtype::F32, BackendId::ENGINE);
        let (plan32, lookup32) =
            cache.get_or_compile(sig32, || Plan::compile(&fw, &expr, &ctx, registry::default_backend()));
        prop_assert_eq!(lookup32, laab_serve::Lookup::Compiled { retrace: true });
        prop_assert_eq!(&plan32.execute::<f32>(&e32), &cold32);
    }

    /// Signatures are injective on the workload dimensions the cache must
    /// distinguish: size and dtype (for one random structure).
    #[test]
    fn signature_separates_size_and_dtype(
        seed in any::<u64>(),
        n in 3usize..10,
    ) {
        let (expr, _) = random_request(seed, 2, n);
        let ctx_n = Context::new().with("A", n, n).with("B", n, n).with("H", n, n).with("x", n, 1);
        let ctx_m =
            Context::new().with("A", n + 1, n + 1).with("B", n + 1, n + 1).with("H", n + 1, n + 1).with("x", n + 1, 1);
        let s1 = Signature::new("f", &expr, &ctx_n, Dtype::F64, BackendId::ENGINE);
        let s2 = Signature::new("f", &expr, &ctx_m, Dtype::F64, BackendId::ENGINE);
        let s3 = Signature::new("f", &expr, &ctx_n, Dtype::F32, BackendId::ENGINE);
        prop_assert_ne!(s1.hash(), s2.hash());
        prop_assert_ne!(s1.hash(), s3.hash());
    }
}
