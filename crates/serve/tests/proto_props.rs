//! Property suite for the wire protocol: `decode_frame` must be total.
//!
//! Whatever bytes arrive — a faithful encoding, a truncation mid-frame,
//! a hostile length prefix, a future protocol version, or pure noise —
//! the decoder returns a structured [`FrameError`]; it never panics and
//! never trusts a length prefix enough to allocate unboundedly. And for
//! well-formed messages, decode is the exact inverse of encode.

use laab_backend::Dtype;
use laab_serve::proto::{
    decode_frame, encode_frame, read_message, FrameError, Message, Outcome, RequestMsg,
    ResponseMsg, MAX_FRAME_LEN,
};
use laab_serve::FlushKind;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A seeded ASCII string (the shim has no string strategy); includes
/// empty and multi-byte-ish lengths.
fn seeded_string(seed: u64, max_len: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| (b'!' + (rng.gen::<u64>() % 90) as u8) as char).collect()
}

fn seeded_request(seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    Message::Request(RequestMsg {
        id: rng.gen(),
        family: seeded_string(seed ^ 1, 24),
        n: rng.gen(),
        dtype: if rng.gen::<bool>() { Dtype::F64 } else { Dtype::F32 },
        backend: seeded_string(seed ^ 2, 24),
        payload: rng.gen(),
    })
}

fn seeded_response(seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = if rng.gen::<bool>() {
        Outcome::Ok {
            queue_ns: rng.gen(),
            exec_ns: rng.gen(),
            occupancy: rng.gen::<u32>(),
            flush: [FlushKind::Occupancy, FlushKind::Deadline, FlushKind::Drain]
                [rng.gen_range(0..3)],
            checksum: rng.gen(),
        }
    } else {
        Outcome::Err { message: seeded_string(seed ^ 3, 120) }
    };
    Message::Response(ResponseMsg { id: rng.gen(), outcome })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: decode(encode(m)) == m, consuming exactly the frame.
    #[test]
    fn encode_decode_round_trips(seed in any::<u64>()) {
        for msg in [
            seeded_request(seed),
            seeded_response(seed),
            Message::Shutdown,
            Message::ShutdownAck,
        ] {
            let bytes = encode_frame(&msg);
            let (decoded, used) = decode_frame(&bytes).expect("own encoding decodes");
            prop_assert_eq!(&decoded, &msg);
            prop_assert_eq!(used, bytes.len(), "a frame consumes exactly itself");
        }
    }

    /// Every strict prefix of a valid frame is `Truncated` — never a
    /// panic, never a bogus success.
    #[test]
    fn truncation_is_rejected_at_every_split_point(seed in any::<u64>()) {
        let bytes = encode_frame(&seeded_request(seed));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                other => prop_assert!(
                    false,
                    "prefix of {cut}/{} bytes must be Truncated, got {:?}",
                    bytes.len(),
                    other
                ),
            }
        }
    }

    /// A hostile length prefix above `MAX_FRAME_LEN` is rejected before
    /// any allocation, regardless of what follows.
    #[test]
    fn oversized_length_prefixes_are_rejected(extra in 1u32..1_000_000) {
        let len = MAX_FRAME_LEN.saturating_add(extra);
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        prop_assert_eq!(decode_frame(&bytes), Err(FrameError::Oversized { len }));
        // The streaming reader hits the same wall.
        let mut cursor = &bytes[..];
        prop_assert_eq!(read_message(&mut cursor), Err(FrameError::Oversized { len }));
    }

    /// A frame stamped with any version byte other than ours is
    /// `UnknownVersion` — future protocol revisions fail loudly instead
    /// of being misparsed.
    #[test]
    fn unknown_versions_are_rejected(seed in any::<u64>(), bump in 1u8..=255) {
        let mut bytes = encode_frame(&seeded_request(seed));
        bytes[4] = bytes[4].wrapping_add(bump);
        prop_assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::UnknownVersion(bytes[4]))
        );
    }

    /// Total on noise: random bytes with a sane length prefix decode to
    /// *some* structured result without panicking.
    #[test]
    fn decoder_is_total_on_noise(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = (len as u32).to_le_bytes().to_vec();
        bytes.extend((0..len).map(|_| rng.gen::<u64>() as u8));
        let _ = decode_frame(&bytes); // must return, Ok or Err
        let mut cursor = &bytes[..];
        let _ = read_message(&mut cursor);
    }

    /// Flipping any single byte of a frame never panics the decoder, and
    /// on the fixed header bytes it yields a structured error (a flipped
    /// body byte may legitimately decode to a different valid message).
    #[test]
    fn single_byte_corruption_never_panics(seed in any::<u64>(), at in 0usize..64) {
        let mut bytes = encode_frame(&seeded_response(seed));
        let at = at % bytes.len();
        bytes[at] ^= 0x5A;
        let _ = decode_frame(&bytes);
    }
}
