//! Property suite for the wire protocol: `decode_frame` must be total.
//!
//! Whatever bytes arrive — a faithful encoding, a truncation mid-frame,
//! a hostile length prefix, a future protocol version, or pure noise —
//! the decoder returns a structured [`FrameError`]; it never panics and
//! never trusts a length prefix enough to allocate unboundedly. And for
//! well-formed messages, decode is the exact inverse of encode.

use laab_backend::Dtype;
use laab_serve::proto::{
    decode_frame, encode_frame, read_message, FrameError, Message, Outcome, RequestMsg,
    ResponseMsg, MAX_FRAME_LEN,
};
use laab_serve::FlushKind;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A seeded ASCII string (the shim has no string strategy); includes
/// empty and multi-byte-ish lengths.
fn seeded_string(seed: u64, max_len: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| (b'!' + (rng.gen::<u64>() % 90) as u8) as char).collect()
}

/// Like [`seeded_string`] but never empty — the decoder rejects empty
/// family/backend names as `BadPayload` (a property of its own below).
fn seeded_name(seed: u64, max_len: usize) -> String {
    let mut s = seeded_string(seed, max_len - 1);
    s.push('x');
    s
}

fn seeded_request(seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    Message::Request(RequestMsg {
        id: rng.gen(),
        family: seeded_name(seed ^ 1, 24),
        n: rng.gen::<u64>().max(1),
        dtype: if rng.gen::<bool>() { Dtype::F64 } else { Dtype::F32 },
        backend: seeded_name(seed ^ 2, 24),
        payload: rng.gen(),
        deadline_us: rng.gen(),
    })
}

fn seeded_response(seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = match rng.gen_range(0..5) {
        0 => Outcome::Ok {
            queue_ns: rng.gen(),
            exec_ns: rng.gen(),
            occupancy: rng.gen::<u32>().max(1),
            flush: [
                FlushKind::Occupancy,
                FlushKind::Deadline,
                FlushKind::Drain,
                FlushKind::Pressure,
            ][rng.gen_range(0..4)],
            checksum: rng.gen(),
        },
        1 => Outcome::Err { message: seeded_string(seed ^ 3, 120) },
        2 => Outcome::Busy { retry_after_us: rng.gen() },
        3 => Outcome::Expired { waited_us: rng.gen() },
        _ => Outcome::Failed { message: seeded_string(seed ^ 4, 120) },
    };
    Message::Response(ResponseMsg { id: rng.gen(), outcome })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: decode(encode(m)) == m, consuming exactly the frame.
    #[test]
    fn encode_decode_round_trips(seed in any::<u64>()) {
        for msg in [
            seeded_request(seed),
            seeded_response(seed),
            Message::Shutdown,
            Message::ShutdownAck,
        ] {
            let bytes = encode_frame(&msg);
            let (decoded, used) = decode_frame(&bytes).expect("own encoding decodes");
            prop_assert_eq!(&decoded, &msg);
            prop_assert_eq!(used, bytes.len(), "a frame consumes exactly itself");
        }
    }

    /// Every strict prefix of a valid frame is `Truncated` — never a
    /// panic, never a bogus success.
    #[test]
    fn truncation_is_rejected_at_every_split_point(seed in any::<u64>()) {
        let bytes = encode_frame(&seeded_request(seed));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                other => prop_assert!(
                    false,
                    "prefix of {cut}/{} bytes must be Truncated, got {:?}",
                    bytes.len(),
                    other
                ),
            }
        }
    }

    /// A hostile length prefix above `MAX_FRAME_LEN` is rejected before
    /// any allocation, regardless of what follows.
    #[test]
    fn oversized_length_prefixes_are_rejected(extra in 1u32..1_000_000) {
        let len = MAX_FRAME_LEN.saturating_add(extra);
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        prop_assert_eq!(decode_frame(&bytes), Err(FrameError::Oversized { len }));
        // The streaming reader hits the same wall.
        let mut cursor = &bytes[..];
        prop_assert_eq!(read_message(&mut cursor), Err(FrameError::Oversized { len }));
    }

    /// A frame stamped with any version byte outside the supported set
    /// {1, 2} is `UnknownVersion` — future protocol revisions fail
    /// loudly instead of being misparsed. (A v2 request re-stamped as
    /// v1 is covered separately: its trailing deadline bytes are
    /// rejected, never silently swallowed.)
    #[test]
    fn unknown_versions_are_rejected(seed in any::<u64>(), bump in 1u8..=255) {
        let mut bytes = encode_frame(&seeded_request(seed));
        let stamped = bytes[4].wrapping_add(bump);
        prop_assume!(stamped != 1 && stamped != 2);
        bytes[4] = stamped;
        prop_assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::UnknownVersion(stamped))
        );
    }

    /// A v2 request frame re-stamped with the v1 version byte still
    /// fails structurally (its appended `deadline_us` becomes trailing
    /// bytes) — the decoder never mixes version dialects.
    #[test]
    fn v2_request_restamped_as_v1_has_trailing_bytes(seed in any::<u64>()) {
        let mut bytes = encode_frame(&seeded_request(seed));
        bytes[4] = 1;
        prop_assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::TrailingBytes { extra: 8 })
        );
    }

    /// Shape fields the length prefix cannot vouch for — a zero operand
    /// size, an empty family or backend name, a served response claiming
    /// occupancy zero — are `BadPayload`, caught at the frame boundary
    /// instead of deep in plan compilation.
    #[test]
    fn inconsistent_shape_fields_are_bad_payload(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = RequestMsg {
            id: rng.gen(),
            family: seeded_name(seed ^ 1, 24),
            n: rng.gen::<u64>().max(1),
            dtype: Dtype::F64,
            backend: seeded_name(seed ^ 2, 24),
            payload: rng.gen(),
            deadline_us: rng.gen(),
        };
        let cases = [
            RequestMsg { n: 0, ..base.clone() },
            RequestMsg { family: String::new(), ..base.clone() },
            RequestMsg { backend: String::new(), ..base },
        ];
        for msg in cases {
            let bytes = encode_frame(&Message::Request(msg));
            prop_assert!(matches!(
                decode_frame(&bytes),
                Err(FrameError::BadPayload { .. })
            ));
        }
        let resp = Message::Response(ResponseMsg {
            id: rng.gen(),
            outcome: Outcome::Ok {
                queue_ns: rng.gen(),
                exec_ns: rng.gen(),
                occupancy: 0,
                flush: FlushKind::Deadline,
                checksum: rng.gen(),
            },
        });
        prop_assert!(matches!(
            decode_frame(&encode_frame(&resp)),
            Err(FrameError::BadPayload { .. })
        ));
    }

    /// Total on noise: random bytes with a sane length prefix decode to
    /// *some* structured result without panicking.
    #[test]
    fn decoder_is_total_on_noise(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = (len as u32).to_le_bytes().to_vec();
        bytes.extend((0..len).map(|_| rng.gen::<u64>() as u8));
        let _ = decode_frame(&bytes); // must return, Ok or Err
        let mut cursor = &bytes[..];
        let _ = read_message(&mut cursor);
    }

    /// Flipping any single byte of a frame never panics the decoder, and
    /// on the fixed header bytes it yields a structured error (a flipped
    /// body byte may legitimately decode to a different valid message).
    #[test]
    fn single_byte_corruption_never_panics(seed in any::<u64>(), at in 0usize..64) {
        let mut bytes = encode_frame(&seeded_response(seed));
        let at = at % bytes.len();
        bytes[at] ^= 0x5A;
        let _ = decode_frame(&bytes);
    }
}
