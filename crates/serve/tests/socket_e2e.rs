//! End-to-end smoke over real sockets: a `Server` on one thread, the
//! load generator driving it from this one, and three acceptance
//! assertions — the socket path is **bitwise identical** to the
//! in-process oracle at the same seed, low-rate traffic flushes on the
//! **deadline** (not just at drain), and shutdown is clean (no leaked
//! socket file, every thread joined).

use laab_serve::loadgen::{self, Arrival, LoadgenConfig};
use laab_serve::{ServeConfig, Server};

fn server_cfg() -> ServeConfig {
    // The seed backend's batched execution is a per-item loop, so
    // batched ≡ solo bitwise — the only backend where the oracle check
    // is exact by construction.
    ServeConfig::smoke_builder().backends(["seed"]).build().expect("smoke config validates")
}

#[test]
fn unix_socket_serving_is_bitwise_identical_and_shuts_down_clean() {
    let path = std::env::temp_dir().join(format!("laab-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server =
        Server::bind(&format!("unix:{}", path.display()), &server_cfg()).expect("bind unix");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let report = loadgen::run(&LoadgenConfig::smoke(&addr)).expect("loadgen completes");

    // Every request of every arrival process completed, and every result
    // matched the in-process solo execution bit for bit.
    assert_eq!(report.runs.len(), 3, "closed, poisson, bursty");
    for run in &report.runs {
        assert_eq!(run.completed, report.requests as u64, "{} completed", run.arrival);
        assert_eq!(run.errors, 0, "{} errors", run.arrival);
        assert_eq!(run.checksum_mismatches, 0, "{} bitwise", run.arrival);
        assert!(run.rtt_p50_us > 0.0 && run.rtt_p99_us >= run.rtt_p50_us, "{}", run.arrival);
    }
    assert!(report.verified);
    assert_eq!(report.checksum_mismatches, 0);

    // At these arrival rates the per-signature inter-arrival dwarfs the
    // 250 µs budget, so batches must flush on the deadline, live — not
    // only when the queue drains.
    let open = report.runs.iter().find(|r| r.arrival.starts_with("poisson")).unwrap();
    assert!(open.deadline_flushes > 0, "open-loop low-rate traffic must deadline-flush");

    // The smoke config sends the in-band shutdown; the server must come
    // back with matching counters and remove its socket file.
    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!(stats.served, 3 * report.requests as u64);
    assert_eq!(stats.rejected, 0);
    assert!(stats.admission.deadline_flushes > 0);
    assert!(!path.exists(), "socket file must not leak past shutdown");
}

#[test]
fn tcp_serving_round_trips_or_skips_without_network() {
    // Loopback TCP with an ephemeral port; environments that forbid even
    // that skip rather than fail.
    let server = match Server::bind("tcp:127.0.0.1:0", &server_cfg()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skipping tcp e2e: {e}");
            return;
        }
    };
    let addr = server.local_addr();
    assert!(addr.starts_with("tcp:"), "{addr}");
    let handle = std::thread::spawn(move || server.run());

    let cfg = LoadgenConfig {
        requests: 32,
        connections: 2,
        arrivals: vec![Arrival::Closed],
        ..LoadgenConfig::smoke(&addr)
    };
    let report = loadgen::run(&cfg).expect("loadgen completes");
    assert_eq!(report.runs[0].completed, 32);
    assert_eq!(report.checksum_mismatches, 0, "tcp path bitwise vs oracle");

    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!(stats.served, 32);
}

#[test]
fn requests_for_unserved_backends_are_rejected_not_executed() {
    let path = std::env::temp_dir().join(format!("laab-e2e-rej-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server =
        Server::bind(&format!("unix:{}", path.display()), &server_cfg()).expect("bind unix");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    // Ask for a backend the server does not serve: every request must
    // come back as a structured error response — counted, not executed,
    // and the connection survives to carry the shutdown.
    let cfg = LoadgenConfig {
        requests: 16,
        connections: 1,
        backend: "engine".to_string(),
        arrivals: vec![Arrival::Closed],
        verify: false,
        ..LoadgenConfig::smoke(&addr)
    };
    let report = loadgen::run(&cfg).expect("loadgen completes");
    assert_eq!(report.runs[0].errors, 16);
    assert_eq!(report.runs[0].completed, 0);

    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!(stats.served, 0);
    assert_eq!(stats.rejected, 16);
    assert!(!path.exists());
}
