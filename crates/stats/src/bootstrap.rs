//! Bootstrap significance testing.
//!
//! Following the paper's reference [11] (Sankaran & Bientinesi 2021), two
//! timing distributions are compared non-parametrically: resample each with
//! replacement, compute the statistic (the minimum, since the paper reports
//! minima), and build a percentile confidence interval on the difference.
//! If the interval excludes zero the difference is significant; otherwise
//! the implementations are declared indistinguishable — the criterion the
//! paper uses for statements like "we observe no statistically significant
//! difference" (Table I).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::timing::Samples;

/// Outcome of a pairwise comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `a` is significantly faster than `b`.
    AFaster,
    /// `b` is significantly faster than `a`.
    BFaster,
    /// The confidence interval on the difference straddles zero.
    Indistinguishable,
}

/// Result of [`bootstrap_compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// 95% percentile CI on `min(b) − min(a)` (positive → `a` faster).
    pub diff_ci: (f64, f64),
    /// Significance verdict.
    pub verdict: Verdict,
    /// Point estimate `min(b) / min(a)` (how many times slower `b` is).
    pub speedup: f64,
}

/// Compare two timing sample sets with `resamples` bootstrap iterations.
///
/// Deterministic for a fixed `seed`.
pub fn bootstrap_compare(a: &Samples, b: &Samples, resamples: usize, seed: u64) -> Comparison {
    assert!(resamples >= 100, "too few bootstrap resamples for a stable CI");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut diffs = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let ra = resample_min(&a.secs, &mut rng);
        let rb = resample_min(&b.secs, &mut rng);
        diffs.push(rb - ra);
    }
    diffs.sort_by(|x, y| x.partial_cmp(y).expect("non-finite bootstrap diff"));
    let lo = diffs[(0.025 * (resamples - 1) as f64).round() as usize];
    let hi = diffs[(0.975 * (resamples - 1) as f64).round() as usize];
    let verdict = if lo > 0.0 {
        Verdict::AFaster
    } else if hi < 0.0 {
        Verdict::BFaster
    } else {
        Verdict::Indistinguishable
    };
    Comparison { diff_ci: (lo, hi), verdict, speedup: b.min() / a.min() }
}

fn resample_min(xs: &[f64], rng: &mut StdRng) -> f64 {
    let mut m = f64::INFINITY;
    for _ in 0..xs.len() {
        let v = xs[rng.gen_range(0..xs.len())];
        if v < m {
            m = v;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered(base: f64, n: usize, amp: f64) -> Samples {
        // Deterministic sawtooth jitter around `base`.
        Samples::new((0..n).map(|i| base + amp * ((i % 7) as f64 - 3.0) / 3.0).collect())
    }

    #[test]
    fn clearly_different_distributions_are_significant() {
        let fast = jittered(0.10, 20, 0.005);
        let slow = jittered(0.20, 20, 0.005);
        let c = bootstrap_compare(&fast, &slow, 2000, 1);
        assert_eq!(c.verdict, Verdict::AFaster);
        assert!(c.speedup > 1.8 && c.speedup < 2.2, "speedup {}", c.speedup);
        let c2 = bootstrap_compare(&slow, &fast, 2000, 1);
        assert_eq!(c2.verdict, Verdict::BFaster);
    }

    #[test]
    fn identical_distributions_are_indistinguishable() {
        let a = jittered(0.10, 20, 0.01);
        let b = jittered(0.10, 20, 0.01);
        let c = bootstrap_compare(&a, &b, 2000, 2);
        assert_eq!(c.verdict, Verdict::Indistinguishable);
        assert!(c.diff_ci.0 <= 0.0 && c.diff_ci.1 >= 0.0);
    }

    #[test]
    fn overlapping_noisy_distributions_are_indistinguishable() {
        // 5% mean difference buried under 30% noise.
        let a = jittered(0.100, 20, 0.03);
        let b = jittered(0.105, 20, 0.03);
        let c = bootstrap_compare(&a, &b, 2000, 3);
        assert_eq!(c.verdict, Verdict::Indistinguishable);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = jittered(0.1, 20, 0.01);
        let b = jittered(0.13, 20, 0.01);
        let c1 = bootstrap_compare(&a, &b, 1000, 42);
        let c2 = bootstrap_compare(&a, &b, 1000, 42);
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "too few bootstrap")]
    fn refuses_tiny_resample_counts() {
        let a = jittered(0.1, 5, 0.0);
        let _ = bootstrap_compare(&a, &a, 10, 0);
    }
}
