//! # laab-stats — measurement methodology
//!
//! The paper's protocol (Sec. III): single-threaded execution, **minimum
//! over 20 repetitions**, and a **bootstrap** check of whether performance
//! differences are statistically significant (following Sankaran &
//! Bientinesi, "Discriminating equivalent algorithms via relative
//! performance"). This crate implements that protocol:
//!
//! * [`time_reps`] — warmup + R repetitions of a closure, wall-clock.
//! * [`Samples`] — order statistics over the repetition times.
//! * [`bootstrap_compare`] — non-parametric bootstrap over the two timing
//!   sets; a confidence interval on the difference of minima yields a
//!   faster/slower/indistinguishable verdict.
//! * [`Table`] — paper-style result tables with markdown rendering.

#![deny(missing_docs)]

mod bootstrap;
mod table;
mod timing;

pub use bootstrap::{bootstrap_compare, Comparison, Verdict};
pub use table::{fmt_secs, Table};
pub use timing::{time_reps, Samples, TimingConfig};
