//! Paper-style result tables.

use serde::{Deserialize, Serialize};

/// A result table: headers, rows, free-form footnotes.
///
/// Renders as aligned plain text (`Display`) and as markdown
/// ([`Table::to_markdown`]); serializes to JSON for EXPERIMENTS.md
/// round-tripping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Table {
    /// Title, e.g. `"Table II: CSE (n = 3000)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Markdown rendering (used by EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {}\n\n", self.title);
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!("|{}\n", self.headers.iter().map(|_| "---|").collect::<String>()));
        for row in &self.rows {
            s.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            s.push_str(&format!("\n> {n}\n"));
        }
        s
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.widths();
        writeln!(f, "{}", self.title)?;
        let line: String = w.iter().map(|n| "-".repeat(n + 2)).collect::<Vec<_>>().join("+");
        writeln!(f, "+{line}+")?;
        let fmt_row = |cells: &[String]| -> String {
            cells.iter().zip(&w).map(|(c, n)| format!(" {c:<n$} ")).collect::<Vec<_>>().join("|")
        };
        writeln!(f, "|{}|", fmt_row(&self.headers))?;
        writeln!(f, "+{line}+")?;
        for row in &self.rows {
            writeln!(f, "|{}|", fmt_row(row))?;
        }
        writeln!(f, "+{line}+")?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Format a duration in seconds the way the paper prints its tables:
/// `0.40`, `0.006`, `6e-4`.
pub fn fmt_secs(t: f64) -> String {
    if !t.is_finite() {
        return "-".to_string();
    }
    if t >= 0.0995 {
        format!("{t:.2}")
    } else if t >= 0.00095 {
        format!("{t:.3}")
    } else if t > 0.0 {
        format!("{:.0}e-{}", t / 10f64.powi(t.log10().floor() as i32), -t.log10().floor())
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("Table X", &["Expr", "TF", "PyT"]);
        t.push_row(vec!["AᵀB".into(), "0.40".into(), "0.40".into()]);
        t.note("n = 3000");
        let text = t.to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("AᵀB"));
        assert!(text.contains("note: n = 3000"));
        let md = t.to_markdown();
        assert!(md.contains("| Expr | TF | PyT |"));
        assert!(md.contains("> n = 3000"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn seconds_formatting_matches_paper_style() {
        assert_eq!(fmt_secs(0.40), "0.40");
        assert_eq!(fmt_secs(1.25), "1.25");
        assert_eq!(fmt_secs(0.006), "0.006");
        assert_eq!(fmt_secs(0.0006), "6e-4");
        assert_eq!(fmt_secs(0.002), "0.002");
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(f64::NAN), "-");
    }

    #[test]
    fn json_serialization() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["1".into()]);
        // serde_json isn't a dependency; verify Serialize impl compiles via
        // a no-op serializer (markdown is the real export format).
        let md = t.to_markdown();
        assert!(md.starts_with("### T"));
    }
}
