//! Wall-clock repetition timing.

use std::time::Instant;

/// How to measure: warmup runs (discarded) followed by timed repetitions.
///
/// The defaults match the paper: 20 repetitions, minimum reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Timed repetitions.
    pub reps: usize,
    /// Discarded warmup runs (cache/allocator warm-up).
    pub warmup: usize,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self { reps: 20, warmup: 2 }
    }
}

impl TimingConfig {
    /// A shorter protocol for quick runs (benches at small n).
    pub fn quick() -> Self {
        Self { reps: 5, warmup: 1 }
    }
}

/// Repetition times, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Samples {
    /// The individual repetition times (chronological order).
    pub secs: Vec<f64>,
}

impl Samples {
    /// Wrap existing timing values.
    pub fn new(secs: Vec<f64>) -> Self {
        assert!(!secs.is_empty(), "Samples require at least one measurement");
        Self { secs }
    }

    fn sorted(&self) -> Vec<f64> {
        let mut s = self.secs.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("non-finite timing sample"));
        s
    }

    /// Minimum — the paper's reported statistic.
    pub fn min(&self) -> f64 {
        self.secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.secs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.secs.iter().sum::<f64>() / self.secs.len() as f64
    }

    /// Linear-interpolation quantile, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let s = self.sorted();
        if s.len() == 1 {
            return s[0];
        }
        let pos = q * (s.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Number of repetitions.
    pub fn len(&self) -> usize {
        self.secs.len()
    }

    /// `true` when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.secs.is_empty()
    }
}

/// Measure `f` under the protocol. The closure's result is returned through
/// [`std::hint::black_box`] so the optimizer cannot elide the computation.
pub fn time_reps<R>(cfg: TimingConfig, mut f: impl FnMut() -> R) -> Samples {
    assert!(cfg.reps >= 1, "at least one repetition required");
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut secs = Vec::with_capacity(cfg.reps);
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        secs.push(t0.elapsed().as_secs_f64());
    }
    Samples::new(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_statistics() {
        let s = Samples::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn single_sample() {
        let s = Samples::new(vec![0.5]);
        assert_eq!(s.min(), 0.5);
        assert_eq!(s.median(), 0.5);
        assert_eq!(s.quantile(0.3), 0.5);
    }

    #[test]
    fn time_reps_runs_warmup_plus_reps() {
        let mut calls = 0;
        let s = time_reps(TimingConfig { reps: 7, warmup: 3 }, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 10);
        assert_eq!(s.len(), 7);
        assert!(s.secs.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn timing_is_monotone_in_work() {
        // A heavier closure must not time faster than a trivial one by an
        // order of magnitude (sanity of the clock plumbing).
        let light = time_reps(TimingConfig::quick(), || 0u64);
        let heavy = time_reps(TimingConfig::quick(), || {
            let mut acc = std::hint::black_box(1u64);
            for i in 0..200_000u64 {
                acc = std::hint::black_box(acc.wrapping_mul(i | 1));
            }
            acc
        });
        assert!(heavy.min() > light.min());
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn empty_samples_panic() {
        let _ = Samples::new(vec![]);
    }
}
