//! Statistical behaviour of the bootstrap comparator on synthetic timing
//! distributions with known ground truth.

use laab_stats::{bootstrap_compare, Samples, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timing-like samples: base + uniform noise + occasional positive spikes
/// (the right-skewed shape real repetition timings have).
fn timing_like(rng: &mut StdRng, base: f64, noise: f64, n: usize) -> Samples {
    Samples::new(
        (0..n)
            .map(|_| {
                let spike =
                    if rng.gen::<f64>() < 0.1 { rng.gen::<f64>() * 4.0 * noise } else { 0.0 };
                base + rng.gen::<f64>() * noise + spike
            })
            .collect(),
    )
}

/// Large real gaps are detected essentially always.
#[test]
fn detects_clear_gaps() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut detected = 0;
    let trials = 40;
    for t in 0..trials {
        let fast = timing_like(&mut rng, 0.100, 0.010, 20);
        let slow = timing_like(&mut rng, 0.150, 0.010, 20);
        let c = bootstrap_compare(&fast, &slow, 1000, t);
        if c.verdict == Verdict::AFaster {
            detected += 1;
        }
    }
    assert!(detected >= trials * 9 / 10, "detected only {detected}/{trials}");
}

/// Identical distributions are rarely called different (type-I error of a
/// 95% interval stays modest even on minima, which are conservative).
#[test]
fn false_positive_rate_is_bounded() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut false_pos = 0;
    let trials = 60;
    for t in 0..trials {
        let a = timing_like(&mut rng, 0.100, 0.020, 20);
        let b = timing_like(&mut rng, 0.100, 0.020, 20);
        let c = bootstrap_compare(&a, &b, 1000, 1000 + t);
        if c.verdict != Verdict::Indistinguishable {
            false_pos += 1;
        }
    }
    assert!(false_pos <= trials / 4, "too many false positives: {false_pos}/{trials}");
}

/// Verdicts are antisymmetric: swapping the arguments flips the sign.
#[test]
fn verdicts_are_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(3);
    for t in 0..20 {
        let a = timing_like(&mut rng, 0.08, 0.01, 20);
        let b = timing_like(&mut rng, 0.13, 0.01, 20);
        let ab = bootstrap_compare(&a, &b, 1000, t);
        let ba = bootstrap_compare(&b, &a, 1000, t);
        match ab.verdict {
            Verdict::AFaster => assert_eq!(ba.verdict, Verdict::BFaster),
            Verdict::BFaster => assert_eq!(ba.verdict, Verdict::AFaster),
            Verdict::Indistinguishable => assert_eq!(ba.verdict, Verdict::Indistinguishable),
        }
        assert!((ab.speedup * ba.speedup - 1.0).abs() < 1e-9);
    }
}

/// Detection power grows monotonically with the gap (sanity of the whole
/// decision chain, mirroring the methodology of the paper's reference
/// [11]).
#[test]
fn power_grows_with_gap() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut detections = Vec::new();
    for gap in [0.0, 0.01, 0.05, 0.20] {
        let mut hits = 0;
        for t in 0..30 {
            let a = timing_like(&mut rng, 0.100, 0.015, 20);
            let b = timing_like(&mut rng, 0.100 * (1.0 + gap), 0.015, 20);
            let c = bootstrap_compare(&a, &b, 800, (gap * 1e4) as u64 + t);
            if c.verdict == Verdict::AFaster {
                hits += 1;
            }
        }
        detections.push(hits);
    }
    assert!(
        detections[0] <= detections[2] && detections[1] <= detections[3],
        "power not monotone: {detections:?}"
    );
    assert!(detections[3] >= 25, "20% gaps must be reliably detected: {detections:?}");
}
