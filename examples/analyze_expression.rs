//! Analyze any blackboard-syntax expression the way the paper analyzes its
//! test expressions: FLOP cost as written, cost with sharing, cost with
//! property awareness, the rewriter's best variant, and measured timings
//! through eager and graph modes.
//!
//! ```text
//! cargo run --release --example analyze_expression -- "H' H x" [n]
//! cargo run --release --example analyze_expression -- "(A^T B)^T A^T B" 384
//! ```
//!
//! Operands: `A B C H` are n×n general, `L` lower-triangular, `S`
//! symmetric, `D` diagonal, `x y` are n×1 vectors.

use laab::prelude::*;
use laab_expr::cost::{aware_cost, naive_cost, shared_cost};
use laab_expr::parse;
use laab_framework::lower::eager_eval_expr;
use laab_kernels::counters;
use laab_stats::{fmt_secs, time_reps};

fn main() {
    let mut args = std::env::args().skip(1);
    let src = args.next().unwrap_or_else(|| "H' H x".to_string());
    let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(384);

    let mut g = OperandGen::new(2024);
    let env = Env::<f32>::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("C", g.matrix(n, n))
        .with("H", g.matrix(n, n))
        .with("L", g.lower_triangular(n))
        .with("S", g.symmetric(n))
        .with("D", g.diagonal(n).to_dense())
        .with("x", g.matrix(n, 1))
        .with("y", g.matrix(n, 1));
    let ctx = Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with("C", n, n)
        .with("H", n, n)
        .with_props("L", n, n, Props::LOWER_TRIANGULAR)
        .with_props("S", n, n, Props::SYMMETRIC)
        .with_props("D", n, n, Props::DIAGONAL)
        .with("x", n, 1)
        .with("y", n, 1);

    let expr = match parse(&src, &ctx) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot parse `{src}`: {e}");
            std::process::exit(2);
        }
    };
    println!("expression : {expr}");
    println!("shape      : {}", expr.shape(&ctx));
    println!("properties : {:?}", expr.props(&ctx));
    println!();
    println!("FLOPs as written (dense kernels) : {:>14}", naive_cost(&expr, &ctx));
    println!("FLOPs with CSE (shared pricing)  : {:>14}", shared_cost(&expr, &ctx, false));
    println!("FLOPs with property awareness    : {:>14}", aware_cost(&expr, &ctx));

    let found = optimize_expr(&expr, &ctx, CostKind::NaiveShared);
    println!(
        "\nrewriter ({} variants explored): `{}`  at {} FLOPs  ({:.1}x)",
        found.explored,
        found.best,
        found.best_cost,
        found.speedup()
    );
    let found_aware = optimize_expr(&expr, &ctx, CostKind::AwareShared);
    if found_aware.best != found.best {
        println!("rewriter + awareness: `{}` at {} FLOPs", found_aware.best, found_aware.best_cost);
    }

    // Measured.
    let cfg = TimingConfig { reps: 10, warmup: 2 };
    let (_, eager_counts) = counters::measure(|| eager_eval_expr(&expr, &env));
    let t_eager = time_reps(cfg, || eager_eval_expr(&expr, &env));
    let flow = Framework::flow();
    let f = flow.function_from_expr(&expr, &ctx);
    let (_, graph_counts) = counters::measure(|| f.call(&env));
    let t_graph = time_reps(cfg, || f.call(&env));
    let f_best = flow.function_from_expr(&found.best, &ctx);
    let t_best = time_reps(cfg, || f_best.call(&env));

    println!("\nmode          min time     kernel traffic");
    println!("eager      {:>9}     {}", fmt_secs(t_eager.min()), eager_counts.describe());
    println!("graph      {:>9}     {}", fmt_secs(t_graph.min()), graph_counts.describe());
    println!("rewritten  {:>9}     (`{}`)", fmt_secs(t_best.min()), found.best);
}
