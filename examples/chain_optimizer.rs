//! Matrix-chain optimization demo (the paper's Experiment 2 / Figs. 5 & 7).
//!
//! Pass a chain of dimensions and the example prints every
//! parenthesization with its FLOP count, the dynamic program's choice, and
//! measured timings for the frameworks' left-to-right default vs
//! `multi_dot`.
//!
//! ```text
//! cargo run --release --example chain_optimizer [d0 d1 d2 ... dm]
//! # default: 384 384 384 1   (the paper's HᵀHx shape)
//! ```

use laab::prelude::*;
use laab_chain::{enumerate_parenthesizations, left_to_right, multi_dot, optimal_parenthesization};
use laab_stats::{fmt_secs, time_reps};

fn main() {
    let dims: Vec<usize> = {
        let d: Vec<usize> = std::env::args().skip(1).filter_map(|v| v.parse().ok()).collect();
        if d.len() >= 2 {
            d
        } else {
            vec![384, 384, 384, 1]
        }
    };
    let m = dims.len() - 1;
    println!("chain of {m} factors, dims {dims:?}\n");

    // Enumerate every order with its analytical cost.
    let (best_cost, best_tree) = optimal_parenthesization(&dims);
    if m <= 6 {
        println!("{:<28} {:>14}", "order", "FLOPs");
        for tree in enumerate_parenthesizations(m) {
            let marker = if tree == best_tree { "  ◀ DP optimum" } else { "" };
            println!("{:<28} {:>14}{marker}", tree.render(), tree.cost(&dims));
        }
    } else {
        println!("({} orders — too many to list; DP optimum below)", catalan(m - 1));
    }
    println!("\nDP selects {} at {} FLOPs", best_tree.render(), best_cost);
    let ltr = left_to_right(m).cost(&dims);
    println!(
        "left-to-right (the frameworks' default) costs {ltr} FLOPs ({:.1}x)",
        ltr as f64 / best_cost as f64
    );

    // Execute both orders on random operands.
    let mut gen = OperandGen::new(3);
    let mats: Vec<Matrix<f32>> = (0..m).map(|i| gen.matrix(dims[i], dims[i + 1])).collect();
    let refs: Vec<&Matrix<f32>> = mats.iter().collect();

    let cfg = TimingConfig { reps: 10, warmup: 2 };
    let t_ltr = time_reps(cfg, || {
        let mut acc = mats[0].clone();
        for f in &mats[1..] {
            acc = laab_kernels::matmul_dispatch(1.0f32, &acc, Trans::No, f, Trans::No);
        }
        acc
    });
    let t_md = time_reps(cfg, || multi_dot(&refs));
    println!(
        "\nmeasured (min of {}): left-to-right {}  |  multi_dot {}  ({:.1}x)",
        cfg.reps,
        fmt_secs(t_ltr.min()),
        fmt_secs(t_md.min()),
        t_ltr.min() / t_md.min()
    );
    println!("\nTable III's finding: the frameworks never re-associate on their own;");
    println!("only PyTorch offers multi_dot, and the user must call it explicitly.");
}

fn catalan(k: usize) -> u128 {
    let mut c: u128 = 1;
    for i in 0..k {
        c = c * 2 * (2 * i as u128 + 1) / (i as u128 + 2);
    }
    c
}
