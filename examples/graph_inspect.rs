//! Regenerate the paper's Figs. 3 & 4: the computational graphs for the
//! CSE test expressions, before and after optimization, as Graphviz DOT.
//!
//! ```text
//! cargo run --release --example graph_inspect [--out DIR]
//! # writes fig3_initial.dot, fig3_optimized.dot, fig4.dot
//! ```

use laab::prelude::*;

fn main() {
    let out_dir = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| ".".to_string())
    };
    let n = 8;
    let ctx = Context::new().with("A", n, n).with("B", n, n);
    let flow = Framework::flow();

    // Fig. 3: (AᵀB)ᵀ(AᵀB) — the duplicated subtree is deduplicated.
    let s = var("A").t() * var("B");
    let e2 = s.t() * s.clone();
    let f2 = flow.function_from_expr(&e2, &ctx);
    let initial = f2.unoptimized_graph();
    let optimized = f2.graph();
    println!("Fig 3 — {e2}");
    println!("  initial graph:   {} nodes, {} matmuls", initial.len(), initial.matmul_count());
    println!(
        "  optimized graph: {} nodes, {} matmuls ({:?})",
        optimized.len(),
        optimized.matmul_count(),
        f2.pass_stats()
    );
    std::fs::write(
        format!("{out_dir}/fig3_initial.dot"),
        initial.to_dot("fig3 initial: (AtB)t(AtB)"),
    )
    .expect("write fig3_initial.dot");
    std::fs::write(format!("{out_dir}/fig3_optimized.dot"), optimized.to_dot("fig3 optimized"))
        .expect("write fig3_optimized.dot");

    // Fig. 4: the flat chain (AᵀB)ᵀAᵀB — no duplicate subtree, CSE finds
    // nothing.
    let e3 = s.t() * var("A").t() * var("B");
    let f3 = flow.function_from_expr(&e3, &ctx);
    println!("\nFig 4 — {e3}");
    println!(
        "  optimized graph: {} nodes, {} matmuls (no duplicates to merge)",
        f3.graph().len(),
        f3.graph().matmul_count()
    );
    std::fs::write(format!("{out_dir}/fig4.dot"), f3.graph().to_dot("fig4: (AtB)tAtB"))
        .expect("write fig4.dot");

    println!("\nDOT files written to {out_dir}/ — render with `dot -Tpng fig3_initial.dot`");
    println!("\n{}", f2.graph().to_dot("fig3 optimized"));
}
