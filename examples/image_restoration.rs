//! Image restoration by iterative backward projection (the application
//! behind the paper's Fig. 1, after Tirer & Giryes 2018).
//!
//! A 1-D signal is blurred by a local operator `H` and recovered by the
//! fixed-point iteration
//!
//! ```text
//! x_{k+1} = Hᵀ(y − H x_k) + x_k
//! ```
//!
//! which is exactly the paper's Expression 1 in its cheapest form
//! (variant 3). The example runs the solver three times — once per
//! algebraic variant of the update — and shows that all converge to the
//! same restoration while their per-iteration cost differs by orders of
//! magnitude.
//!
//! ```text
//! cargo run --release --example image_restoration [n]
//! ```

use laab::prelude::*;
use laab_framework::Function;
use laab_stats::fmt_secs;
use std::time::Instant;

/// A row-normalized local blur operator (near-Toeplitz band matrix plus a
/// ridge on the diagonal so the iteration contracts).
fn blur_operator(n: usize) -> Matrix<f32> {
    let radius = 2i64;
    Matrix::from_fn(n, n, |i, j| {
        let d = (i as i64 - j as i64).abs();
        if d <= radius {
            // triangular kernel, normalized below
            (radius + 1 - d) as f32 / ((radius + 1) * (radius + 1)) as f32
        } else {
            0.0
        }
    })
}

/// A piecewise-smooth ground-truth signal.
fn ground_truth(n: usize) -> Matrix<f32> {
    Matrix::from_fn(n, 1, |i, _| {
        let t = i as f32 / n as f32;
        if t < 0.3 {
            1.0
        } else if t < 0.6 {
            (t * 20.0).sin() * 0.5
        } else {
            -0.8
        }
    })
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(384);
    println!("Iterative image restoration (paper Fig. 1 application), n = {n}\n");

    let h = blur_operator(n);
    let truth = ground_truth(n);
    let y = laab_kernels::matmul(&h, Trans::No, &truth, Trans::No); // blurred observation

    let ctx = Context::new().with("H", n, n).with("x", n, 1).with("y", n, 1);
    let (hv, xv, yv) = (var("H"), var("x"), var("y"));
    let variants: Vec<(&str, Expr)> = vec![
        (
            "variant 1: Hᵀy + (I − HᵀH)x",
            hv.t() * yv.clone() + (laab_expr::identity(n) - hv.t() * hv.clone()) * xv.clone(),
        ),
        (
            "variant 2: Hᵀy + x − Hᵀ(Hx)",
            hv.t() * yv.clone() + xv.clone() - hv.t() * (hv.clone() * xv.clone()),
        ),
        ("variant 3: Hᵀ(y − Hx) + x", hv.t() * (yv.clone() - hv.clone() * xv.clone()) + xv.clone()),
    ];

    let flow = Framework::flow();
    let iters = 30;
    for (label, update) in &variants {
        let f: Function = flow.function_from_expr(update, &ctx);
        let mut x = Matrix::<f32>::zeros(n, 1);
        let t0 = Instant::now();
        for _ in 0..iters {
            let env = Env::new().with("H", h.clone()).with("x", x).with("y", y.clone());
            x = f.call(&env).pop().unwrap();
        }
        let dt = t0.elapsed().as_secs_f64();
        let err = x.rel_dist(&truth);
        println!(
            "{label:<34} {iters} iterations in {:>8}  ({} / iter)   restoration error {err:.3}",
            fmt_secs(dt),
            fmt_secs(dt / iters as f64),
        );
    }

    // The rewriter discovers the cheap variant automatically.
    let r = optimize_expr(&variants[0].1, &ctx, CostKind::NaiveShared);
    println!(
        "\nlaab-rewrite, starting from variant 1, proposes `{}` ({:.0}x fewer FLOPs, {} variants explored)",
        r.best,
        r.speedup(),
        r.explored
    );
}
