//! Matrix-property dispatch demo (the paper's Experiment 3 / Table IV).
//!
//! The same product `X·B` is executed three ways for each structure of `X`
//! (triangular, symmetric-output, tridiagonal, diagonal, orthogonal):
//! the framework's `matmul` (structure-blind GEMM), the hand-coded
//! specialized kernel, and `laab-rewrite`'s automatic property dispatch.
//!
//! ```text
//! cargo run --release --example property_dispatch [n]
//! ```

use laab::prelude::*;
use laab_kernels::{counters, matmul, syrk, trmm, UpLo};
use laab_rewrite::aware_eval;
use laab_stats::{fmt_secs, time_reps};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(384);
    println!("Property dispatch at n = {n} (paper Table IV)\n");
    let cfg = TimingConfig { reps: 10, warmup: 2 };

    let mut gen = OperandGen::new(13);
    let a = gen.matrix::<f32>(n, n);
    let b = gen.matrix::<f32>(n, n);
    let l = gen.lower_triangular::<f32>(n);
    let tri = gen.tridiagonal::<f32>(n);
    let diag = gen.diagonal::<f32>(n);
    let q = gen.orthogonal::<f32>(n);

    let env = Env::new()
        .with("A", a.clone())
        .with("B", b.clone())
        .with("L", l.clone())
        .with("T", tri.to_dense())
        .with("D", diag.to_dense())
        .with("Q", q);
    let ctx = Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with_props("L", n, n, Props::LOWER_TRIANGULAR)
        .with_props("T", n, n, Props::TRIDIAGONAL)
        .with_props("D", n, n, Props::DIAGONAL)
        .with_props("Q", n, n, Props::ORTHOGONAL);

    println!("expression         matmul   hand-coded        aware   aware dispatch");

    let report = |label: &str, expr: &Expr, hand: &mut dyn FnMut() -> Matrix<f32>| {
        let ml = env.expect(match label {
            "LB" => "L",
            "TB" => "T",
            "DB" => "D",
            _ => "A",
        });
        let t_mm = time_reps(cfg, || {
            matmul(
                ml,
                Trans::No,
                if label == "AAᵀ" { ml } else { &b },
                if label == "AAᵀ" { Trans::Yes } else { Trans::No },
            )
        });
        let t_hand = time_reps(cfg, &mut *hand);
        let t_aware = time_reps(cfg, || aware_eval(expr, &env, &ctx));
        let (_, counts) = counters::measure(|| aware_eval(expr, &env, &ctx));
        println!(
            "{:<12} {:>12} {:>12} {:>12}   {}",
            label,
            fmt_secs(t_mm.min()),
            fmt_secs(t_hand.min()),
            fmt_secs(t_aware.min()),
            counts.describe()
        );
    };

    let lb = var("L") * var("B");
    report("LB", &lb, &mut || trmm(1.0f32, &l, UpLo::Lower, &b));
    let aat = var("A") * var("A").t();
    report("AAᵀ", &aat, &mut || syrk(1.0f32, &a));
    let tb = var("T") * var("B");
    report("TB", &tb, &mut || laab_kernels::tridiag_matmul(&tri, &b));
    let db = var("D") * var("B");
    report("DB", &db, &mut || laab_kernels::diag_matmul(&diag, &b));

    // Orthogonality: QᵀQ·B needs no arithmetic at all.
    let qtqb = (var("Q").t() * var("Q")) * var("B");
    let (out, counts) = counters::measure(|| aware_eval(&qtqb, &env, &ctx));
    println!(
        "\n(QᵀQ)B with Q declared orthogonal: {} — result == B ({} element error)",
        if counts.total_flops() == 0 { "zero FLOPs" } else { "unexpected work!" },
        out.rel_dist(&b)
    );
    println!(
        "\nThe frameworks run a GEMM for every row above (Table IV: no property is exploited)."
    );
}
