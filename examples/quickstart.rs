//! Quickstart: eager vs graph mode on the paper's motivating expression.
//!
//! Builds `(AᵀB)ᵀ(AᵀB)` (the Stochastic-Newton building block of the
//! paper's Fig. 2), runs it eagerly and as a traced graph function, and
//! prints the kernel traffic and timings side by side.
//!
//! ```text
//! cargo run --release --example quickstart [n]
//! ```

use laab::prelude::*;
use laab_framework::lower::eager_eval_expr;
use laab_kernels::counters;
use laab_stats::{fmt_secs, time_reps};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(384);
    println!("LAAB quickstart — (AᵀB)ᵀ(AᵀB) at n = {n}\n");

    // 1. Operands (seeded, f32 — the frameworks' default precision).
    let mut gen = OperandGen::new(42);
    let env = Env::<f32>::new().with("A", gen.matrix(n, n)).with("B", gen.matrix(n, n));
    let ctx = Context::new().with("A", n, n).with("B", n, n);

    // 2. The test expression, written like on a blackboard.
    let s = var("A").t() * var("B");
    let expr = s.t() * s.clone();
    println!("expression: {expr}");

    // 3. Eager mode: ops execute as written — the duplicate AᵀB runs twice.
    let (_, eager_counts) = counters::measure(|| eager_eval_expr(&expr, &env));
    println!("\nEager mode kernel traffic: {}", eager_counts.describe());

    // 4. Graph mode: trace, optimize (transpose folding + CSE), execute.
    let flow = Framework::flow();
    let f = flow.function_from_expr(&expr, &ctx);
    let (_, graph_counts) = counters::measure(|| f.call(&env));
    println!("Graph mode kernel traffic: {}", graph_counts.describe());
    println!(
        "graph optimizer: {:?} (decorator overhead {:.1e} s)",
        f.pass_stats(),
        f.build_time().as_secs_f64()
    );

    // 5. Timings (min of 10).
    let cfg = TimingConfig { reps: 10, warmup: 2 };
    let t_eager = time_reps(cfg, || eager_eval_expr(&expr, &env));
    let t_graph = time_reps(cfg, || f.call(&env));
    println!(
        "\nmin of {} reps:  eager {}  |  graph {}  ({:.2}x)",
        cfg.reps,
        fmt_secs(t_eager.min()),
        fmt_secs(t_graph.min()),
        t_eager.min() / t_graph.min()
    );
    println!("\nThe paper's Table I row 2: eager ≈ 1.5× graph — 3 GEMMs vs 2 (CSE).");
}
