//! Sketched (stochastic) Newton iteration for large least squares — the
//! application behind the paper's Expression 4 (`(AᵀB)ᵀ(AᵀB)`, after
//! Chung et al., "Stochastic Newton and quasi-Newton methods for large
//! linear least-squares problems").
//!
//! Each step draws a sketch `S_k` of the rows of the design matrix `A`,
//! forms the sketched Gram matrix `M = (SᵀA)ᵀ(SᵀA)` — the paper's test
//! expression — and takes a regularized Newton step. The example contrasts
//! running `M` through eager mode (3 GEMMs: the duplicated `SᵀA` is
//! recomputed) and graph mode (2 GEMMs after CSE), and reports the solver's
//! convergence.
//!
//! ```text
//! cargo run --release --example stochastic_newton [n]
//! ```

use laab::prelude::*;
use laab_framework::lower::eager_eval_expr;
use laab_kernels::{counters, gemv_alloc, matmul};
use laab_stats::fmt_secs;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(256);
    let rows = 2 * n; // over-determined system
    let sketch = n / 2;
    println!("Sketched Newton least squares: A is {rows}x{n}, sketch size {sketch}\n");

    let mut gen = OperandGen::new(7);
    let a = gen.matrix::<f32>(rows, n);
    let x_true = gen.matrix::<f32>(n, 1);
    let b = matmul(&a, Trans::No, &x_true, Trans::No);

    let ctx = Context::new().with("S", rows, sketch).with("A", rows, n);
    // The paper's Expression 4 with the sketch folded in: M := (SᵀA)ᵀ(SᵀA).
    let sta = var("S").t() * var("A");
    let m_expr = sta.t() * sta.clone();

    let flow = Framework::flow();
    let f = flow.function_from_expr(&m_expr, &ctx);

    // Kernel traffic comparison on one sketch.
    let env0 = Env::new().with("S", gen.matrix::<f32>(rows, sketch)).with("A", a.clone());
    let (_, ec) = counters::measure(|| eager_eval_expr(&m_expr, &env0));
    let (_, gc) = counters::measure(|| f.call(&env0));
    println!("Gram-matrix expression: {m_expr}");
    println!("  eager : {}", ec.describe());
    println!("  graph : {}  (CSE saved one GEMM)\n", gc.describe());

    // The Newton loop (graph mode).
    let mut x = Matrix::<f32>::zeros(n, 1);
    let lambda = 0.5f32; // damping
    let t0 = Instant::now();
    let steps = 12;
    for k in 0..steps {
        let s = gen.matrix::<f32>(rows, sketch);
        let env = Env::new().with("S", s).with("A", a.clone());
        let mut m = f.call(&env).pop().unwrap();
        // Regularize: M + λI.
        for i in 0..n {
            m[(i, i)] += lambda;
        }
        // Gradient of ½‖Ax − b‖²: g = Aᵀ(Ax − b).
        let ax = gemv_alloc(&a, Trans::No, &x);
        let r = ax.sub(&b);
        let g = gemv_alloc(&a, Trans::Yes, &r);
        // Newton direction via Jacobi-preconditioned gradient step on M:
        // d ≈ D⁻¹ g with D = diag(M) — enough to contract at this scale
        // without a factorization (kept out of scope, as in the paper).
        let mut d = Matrix::<f32>::zeros(n, 1);
        for i in 0..n {
            d[(i, 0)] = g[(i, 0)] / m[(i, i)];
        }
        for i in 0..n {
            x[(i, 0)] -= d[(i, 0)];
        }
        if k % 3 == 0 || k == steps - 1 {
            println!("  step {k:>2}: relative error {:.4}", x.rel_dist(&x_true));
        }
    }
    println!(
        "\n{} Newton steps in {} (graph-mode Gram matrix, 2 GEMMs per step instead of 3)",
        steps,
        fmt_secs(t0.elapsed().as_secs_f64())
    );
}
