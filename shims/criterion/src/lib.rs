//! Offline stand-in for `criterion`, implementing the harness surface the
//! LAAB benches use: `criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_function`/`bench_with_input`, throughput annotation and
//! the `sample_size`/`warm_up_time`/`measurement_time` builder.
//!
//! Measurement model (simpler than upstream's linear regression, same
//! protocol as the paper): warm up for `warm_up_time`, then take
//! `sample_size` wall-clock samples of an adaptively sized iteration
//! batch and report min / median / mean per iteration. Results go to
//! stdout; there is no HTML report. See `shims/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark (upstream default 100).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// How long to run the routine before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Read a benchmark-name filter from the command line, like upstream
    /// (`cargo bench -- <substring>`). Harness flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--quiet" | "-q" | "--verbose" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with('-') => {
                    // Unknown harness flag with a possible value; skip it.
                    if !s.contains('=') {
                        args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        self.run_one(&id.full_name(), None, f);
        self
    }

    fn run_one<F>(&self, name: &str, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name, throughput);
    }
}

/// A named benchmark with an optional parameter, e.g. `gemm/512`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `BenchmarkId::new("gemm", 512)` → `gemm/512`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id that is only the parameter, e.g. for per-size groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn full_name(&self) -> String {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (n, Some(p)) => format!("{n}/{p}"),
            (n, None) => n.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s, parameter: None }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements (e.g. FLOPs or matrix entries) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group (accepted for source
    /// compatibility; the shim applies the harness-level setting).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `self.name/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        self.criterion.run_one(&full, self.throughput.as_ref(), f);
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        self.criterion.run_one(&full, self.throughput.as_ref(), |b| f(b, input));
        self
    }

    /// End the group (upstream writes reports here; the shim prints as it
    /// goes, so this is a no-op kept for source compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, storing per-iteration seconds for each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;

        // Batch size so that `sample_size` samples fill measurement_time.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)).round() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(e)) => {
                format!("  {:>12}/s", fmt_rate(*e as f64 / min))
            }
            Some(Throughput::Bytes(b)) => {
                format!("  {:>11}B/s", fmt_rate(*b as f64 / min))
            }
            None => String::new(),
        };
        println!(
            "{name:<50} min {}  median {}  mean {}{rate}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>8.3} s")
    } else if secs >= 1e-3 {
        format!("{:>8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>8.3} µs", secs * 1e6)
    } else {
        format!("{:>8.1} ns", secs * 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.2} ")
    }
}

/// Define a benchmark group: either the `name/config/targets` form or the
/// positional `criterion_group!(benches, f, g)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(3u64.wrapping_mul(7)));
            ran += 1;
        });
        assert_eq!(ran, 1);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.finish();
    }
}
