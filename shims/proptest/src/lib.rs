//! Offline stand-in for `proptest`, implementing the subset LAAB's property
//! tests use: the `proptest!` macro with `#![proptest_config(...)]`, range
//! and `any::<T>()` strategies, `prop_map`, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Differences from upstream (deliberate, see `shims/README.md`):
//!
//! * no shrinking — a failing case prints its fully-instantiated inputs
//!   instead, which is enough to reproduce (the RNG is deterministic per
//!   test name and case index);
//! * `prop_assert!` panics immediately rather than returning `Err`;
//! * `PROPTEST_CASES` still overrides the per-test case count.

/// Deterministic per-test RNG and case bookkeeping.
pub mod test_runner {
    /// Per-case deterministic RNG (SplitMix64 over a hash of the test
    /// name and case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test uniquely named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below(0)");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-run configuration (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The case count to actually run: `PROPTEST_CASES` env override, or
    /// the config's value. Lets CI dial property tests down or up without
    /// code changes, like upstream.
    pub fn resolved_cases(cfg: &Config) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(cfg.cases)
    }

    /// Why a single case did not pass (upstream: `TestCaseError`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property failed with a message; the run aborts.
        Fail(String),
        /// The inputs were rejected (`prop_assume!`); the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing outcome with a message.
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(msg.to_string())
        }

        /// A rejected-input outcome with a message.
        pub fn reject(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }
}

pub use test_runner::Config as ProptestConfig;
pub use test_runner::TestCaseError;

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value` (upstream: `Strategy`).
    /// No shrinking: `sample` draws directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A constant strategy (upstream: `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// Types with a canonical "any value" strategy (upstream: `Arbitrary`).
    pub trait Arb: Sized {
        /// Draw an arbitrary value.
        fn arb(rng: &mut TestRng) -> Self;
    }

    impl Arb for bool {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arb for u64 {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arb for u32 {
        fn arb(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arb for usize {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arb for i64 {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arb for f64 {
        fn arb(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning several magnitudes — a
            // pragmatic default for numeric property tests.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arb> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arb>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A half-open length range for collection strategies (upstream:
    /// `SizeRange`). Concrete `From` impls keep untyped integer literals
    /// inferring as `usize`, exactly like upstream's conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { start: r.start, end: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { start: *r.start(), end: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { start: n, end: n + 1 }
        }
    }

    /// A strategy for `Vec<E>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        len: SizeRange,
    }

    /// `vec(element, 3..8)` — vectors whose length is drawn from `len`.
    pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy { element, len: len.into() }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in one import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Assert inside a property; panics with the message (no `Err` plumbing).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when `cond` does not hold (upstream rejects and
/// resamples; the shim's expansion returns `Reject` from the case body and
/// the runner moves on to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items. Each expands
/// to a plain `#[test]` that samples the strategies for `cases` iterations;
/// on failure the concrete inputs are printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let cases = $crate::test_runner::resolved_cases(&cfg);
            for case in 0..cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )*
                let __inputs = format!(
                    concat!("case {}/{}:" $(, " ", stringify!($arg), " = {:?}")*),
                    case,
                    cases
                    $(, &$arg)*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) | Ok(Err($crate::TestCaseError::Reject(_))) => {}
                    Ok(Err($crate::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest {} failed at {}: {}",
                            stringify!($name),
                            __inputs,
                            msg
                        );
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest {} failed at {}",
                            stringify!($name),
                            __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::ProptestConfig::default()) $($rest)*
        );
    };
}
