//! Offline stand-in for the `rand` crate, implementing exactly the surface
//! LAAB uses: `StdRng::seed_from_u64`, `Rng::gen::<f64/bool>()` and
//! `Rng::gen_range(Range<usize>)`.
//!
//! The container this workspace builds in has no access to a crates
//! registry, so external dependencies are replaced by small in-repo shims
//! (see `shims/README.md`). The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically far better than the
//! workloads here require. It is **not** the upstream `StdRng` stream;
//! seeds produce different (but equally reproducible) operand data.

pub mod rngs {
    /// The standard RNG: xoshiro256++ behind the same name upstream uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructors (subset of upstream `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types that `Rng::gen` can produce (upstream: the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe core of a generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// The user-facing generator trait (subset of upstream `Rng`).
pub trait Rng: RngCore + Sized {
    /// Draw a value of type `T` (f64/f32 in `[0,1)`, uniform bool/ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from `range` (upstream takes any `SampleRange`; the
    /// shim supports the `Range<usize>` LAAB uses).
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // irrelevant for benchmark operand generation.
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as usize
    }
}

impl<T: RngCore + Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let i = r.gen_range(3..17);
            assert!((3..17).contains(&i));
        }
    }
}
