//! Offline stand-in for `serde`, sized to what LAAB needs: a [`Serialize`]
//! trait that lowers values into a JSON [`Value`] tree, a [`Deserialize`]
//! trait that lifts them back, and a derive macro for structs with named
//! fields (re-exported from the in-repo `serde_derive` shim when the
//! `derive` feature is on).
//!
//! The real serde is serializer-generic; this shim hard-wires the one data
//! model the workspace uses (JSON via the `serde_json` shim). See
//! `shims/README.md` for why these exist.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree. Object keys keep insertion order so serialized
/// output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON integer, kept exact (u64 seeds round-trip losslessly).
    Int(i128),
    /// A JSON float (serialized with a decimal point or exponent so it
    /// stays a float on re-parse).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Value::Number` or `Value::Int`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The exact integer payload, if this is a `Value::Int`.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a `Value::Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Build the JSON value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Error raised when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lift themselves back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    // Exact path first; a float is accepted for integer
                    // fields only when integral (lenient, like serde_json
                    // with arbitrary JSON producers).
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(DeError(format!("expected integer, got {v:?}"))),
                }
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError(format!("expected number, got {v:?}")))
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
