//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for non-generic structs with named fields —
//! the only shape LAAB serializes. Written against the built-in
//! `proc_macro` API only (no `syn`/`quote`; the build container has no
//! registry access, see `shims/README.md`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim) for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let pushes: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{pushes}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (shim) for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(v.get(\"{f}\")\
                     .ok_or_else(|| serde::DeError(format!(\
                         \"missing field `{f}` in {name}\")))?)?,"
            )
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 Ok(Self {{ {inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}

/// Extract `(struct_name, field_names)` from a struct definition.
///
/// Panics (derive-time error) on enums, tuple structs, and generic structs:
/// the shim intentionally supports only what the workspace derives on.
fn parse_named_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut it = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "enum" || s == "union" {
                panic!("serde shim derive supports structs only, got `{s}`");
            }
            if s == "struct" {
                match it.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, got {other:?}"),
                }
                break;
            }
        }
    }
    let name = name.expect("serde shim derive: no `struct` keyword found");

    // The next token must be the named-field brace group (no generics).
    let body = loop {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive does not support generic structs");
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple structs");
            }
            Some(_) => continue,
            None => panic!("serde shim derive: struct `{name}` has no body"),
        }
    };

    // Fields: `[attrs] [vis] ident : TYPE ,` — collect the idents before `:`
    // at depth 0 (types may contain `,` only inside <...> or (...) groups,
    // and `<`/`>` never nest with a top-level comma in between for the
    // simple types used here).
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip field attributes.
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next(); // the [...] group
        }
        // Skip visibility.
        if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            toks.next();
            if matches!(
                toks.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                toks.next();
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:`, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => continue,
                None => break,
            }
        }
    }
    (name, fields)
}
