//! Offline stand-in for `serde_json`: serialize any `serde::Serialize`
//! (shim) to a JSON string, and parse JSON text back into a
//! [`serde::Value`] tree. Covers the full JSON grammar (strings with
//! escapes, numbers, nesting) so externally produced files also parse.
//! See `shims/README.md` for why this exists.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), out, indent, depth, '[', ']', |item, out, indent, depth| {
                write_value(item, out, indent, depth)
            })
        }
        Value::Object(fields) => {
            write_seq(fields.iter(), out, indent, depth, '{', '}', |(k, v), out, indent, depth| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth);
            })
        }
    }
}

fn write_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, Option<usize>, usize),
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        newline_indent(out, indent, depth + 1);
        write_item(item, out, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        newline_indent(out, indent, depth);
    }
    out.push(close);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{:?}` keeps a decimal point or exponent (`20.0`, `5e-324`), so
        // a float re-parses as `Value::Number`, never `Value::Int`.
        out.push_str(&format!("{n:?}"));
    } else {
        // JSON has no NaN/Inf; serialize as null like serde_json's Value.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.lit("null", Value::Null),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => return Err(Error(format!("expected `,` or `]`, found `{}`", c as char))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                c => return Err(Error(format!("expected `,` or `}}`, found `{}`", c as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            // BMP only — surrogate pairs are not produced by
                            // this shim's writer and not needed by LAAB.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad \\u{code:04x}")))?,
                            );
                        }
                        c => return Err(Error(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        // A token with no fraction or exponent is an exact integer; huge
        // integer literals overflow i128 and fall back to f64.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("tab\"le\n1".into())),
            ("n".into(), Value::Int(512)),
            ("seed".into(), Value::Int(9007199254740993)),
            ("ratio".into(), Value::Number(1.5)),
            ("whole".into(), Value::Number(20.0)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("rows".into(), Value::Array(vec![Value::Array(vec![Value::String("a".into())])])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12x").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn integers_exact_and_floats_stay_floats() {
        assert_eq!(to_string(&20u64).unwrap(), "20");
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(to_string(&Value::Number(20.0)).unwrap(), "20.0");
        assert_eq!(to_string(&Value::Number(0.5)).unwrap(), "0.5");
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<u8>("300").is_err());
    }
}
