//! `laab` — the unified runner for the Linear Algebra Awareness Benchmark.
//!
//! ```text
//! laab run [OPTIONS] [EXPERIMENT]...   run experiments (default: all)
//! laab bench [OPTIONS]                 GEMM engine perf trajectory
//! laab serve [OPTIONS]                 plan-cache serving throughput
//! laab serve --listen ADDR [OPTIONS]   network server (unix/tcp RPC)
//! laab loadgen --addr ADDR [OPTIONS]   drive a server, client-side latency
//! laab list                            list experiments + report formats
//! laab help                            this message
//! ```
//!
//! See `laab help` (or the README) for the option reference.

use std::io::Write;
use std::process::ExitCode;

use laab::serve::{self, loadgen, ServeConfig, Server};
use laab::suite::bench_registry;
use laab::suite::gemm_bench::{self, GemmBenchConfig};
use laab::suite::runner::{self, Experiment};
use laab::suite::ExperimentConfig;
use laab_stats::TimingConfig;

const USAGE: &str = "\
laab — Linear Algebra Awareness Benchmark runner (arXiv:2202.09888)

USAGE:
    laab run [OPTIONS] [EXPERIMENT]...
    laab bench [BENCH OPTIONS]
    laab serve [SERVE OPTIONS]
    laab loadgen --addr ADDR [LOADGEN OPTIONS]
    laab list
    laab help

EXPERIMENTS:
    fig1 table1 table2 table3 table4 table5 table6 fig6 fig7 ext_solve
    (none given: run everything in paper order)

OPTIONS:
    --quick          smoke protocol: n = 64, 5 reps (for CI and try-outs)
    --n N            problem size          [default: 512; paper: 3000]
    --reps R         timed repetitions     [default: 20]
    --warmup W       discarded warmup runs [default: 2]
    --seed S         operand seed          [default: 6827 (0x1AAB)]
    --no-check       skip numeric cross-validation of variants
    --json           print the machine-readable report to stdout
                     (tables are suppressed; combine with --out to keep both)
    --out PATH       write the JSON report to PATH (BENCH_*.json format)
    --md             print results as markdown instead of plain text
    --strict         exit non-zero unless every paper finding reproduces

BENCH OPTIONS (laab bench — GEMM engine GFLOP/s trajectory):
    --quick          tiny shapes for CI smoke runs
    --reps R         timed repetitions per shape   [default: 5]
    --warmup W       discarded warmups per shape   [default: 1]
    --threads N      N-thread measurements         [default: detected cores]
    --seed S         operand seed                  [default: 6827 (0x1AAB)]
    --json           print the machine-readable report to stdout
    --out PATH       write the JSON report to PATH (BENCH_gemm.json format)

SERVE OPTIONS (laab serve — compiled-plan cache serving throughput):
    --smoke          CI smoke protocol: n = 48, 320 requests
    --requests R     synthetic requests to drain   [default: 2048]
    --clients C      serving clients. Explicit counts are taken verbatim
                     (never clamped); omit the flag for auto-detection,
                     which caps at 8 — beyond that the 1-socket kernels,
                     not the serving layer, are the bottleneck. `--clients
                     0` is rejected: it is not \"all cores\".
                                                   [default: auto, max 8]
    --n N            base operand size             [default: 192]
    --seed S         stream/operand seed           [default: 6827 (0x1AAB)]
    --backends LIST  comma-separated execution backends to A/B under the
                     same interleaved traffic      [default: engine]
                     (built-ins: engine, seed, reference, deferred;
                     first = baseline)
    --dtype D        pin request precision: f32 | f64 | mixed
                                                   [default: mixed]
    --opt LEVEL      optimizer pipeline: passes | egraph
                     `passes` compiles through the trace-time graph
                     passes alone; `egraph` A/Bs them against equality
                     saturation + cost-based extraction under the same
                     interleaved traffic, reports per-family extracted
                     cost vs measured latency, and numerically probes the
                     two pipelines against each other
                                                   [default: passes]
    --dispatch-us D  modeled launch cost of the deferred backend: every
                     flushed op group is charged D µs of dispatch before
                     its kernels run, so the report's dispatch-vs-compute
                     split (and the win from fusing launches away) is
                     deterministic                 [default: 5]
    --no-fusion      keep the deferred tape but launch every op in its
                     own group: isolates the dispatch-model cost from
                     the fusion win (the fusion-on/off A/B runs either
                     way; this flips the serving legs)
    --batch-window N admission window: coalesce up to N pending
                     same-signature requests into one batched (multi-RHS)
                     execution                     [default: 8]
    --batch-deadline-us D
                     latency budget of a live partial batch: it flushes
                     when its oldest request has waited D µs, even below
                     the window (deadline OR occupancy, whichever first).
                     Required ≥ 1 when the window coalesces.
                                                   [default: 250]
    --arrival-rate R offered load of the live/open-loop phases, req/s
                                                   [default: 2000]
    --no-batch       disable batching (same as --batch-window 0)
    --max-inflight N per-connection in-flight cap: requests beyond it get
                     a structured Busy{retry_after_us} rejection instead
                     of queueing (0 = unlimited)   [default: 256]
    --backlog N      global admission-backlog bound: submits past it are
                     shed with Busy; past half of it the window degrades
                     (pressure flush) to favor latency (0 = unbounded)
                                                   [default: 2048]
    --quarantine-after N
                     quarantine a (signature, backend) after N execution
                     panics; later requests for it are refused up front
                     (0 = never quarantine)        [default: 3]
    --read-timeout-ms MS
                     reap a connection whose client goes silent for MS ms
                     (0 = wait forever)            [default: 30000]
    --faults SPEC    deterministic fault injection, for testing the
                     failure paths: comma-separated kind:rate pairs from
                     drop:<n/d>, delay:<n/d>x<us>, panic:<n/d>,
                     corrupt:<n/d> — each request id fires a fault at
                     most once, decided by the seed  [default: none]
    --listen ADDR    serve over a socket instead of benchmarking:
                     unix:<path> or tcp:<host:port>. Runs until a client
                     sends the in-band shutdown frame (see laab loadgen).
    --record-arrivals PATH
                     (with --listen) write the observed inter-arrival
                     gaps to PATH at shutdown, one microsecond gap per
                     line — the trace format laab loadgen replays with
                     --arrivals replay:PATH
    --json           print the machine-readable report to stdout
    --out PATH       write the JSON report to PATH (BENCH_serve.json format)

LOADGEN OPTIONS (laab loadgen — drive a --listen server from the outside):
    --addr ADDR      server address (unix:<path> or tcp:<host:port>)
    --smoke          CI smoke protocol: 96 requests, 2 connections, all
                     three arrival processes, verify + shutdown
    --requests R     requests per arrival-process run   [default: 512]
    --connections C  concurrent connections             [default: 2]
    --n N            base operand size (must match the server's pools
                     only in as much as sizes stay in [2, 4096])
                                                        [default: 192]
    --seed S         stream seed; MUST match the server's --seed for the
                     bitwise check                      [default: 6827]
    --backend B      backend each request asks for      [default: engine]
    --dtype D        pin request precision: f32 | f64 | mixed
    --arrivals LIST  comma-separated arrival processes to sweep:
                     closed | poisson:<rate> | bursty:<rate>x<burst> |
                     replay:<file> (a --record-arrivals trace: requests
                     are paced to the recorded gaps, wrapping if the
                     trace is shorter than the run)
                                 [default: closed,poisson:2000,bursty:2000x8]
    --deadline-us D  stamp every request with a D-microsecond deadline;
                     the server answers Expired instead of executing a
                     request that overstays it (0 = none) [default: 0]
    --max-retries R  retry budget per request for Busy rejections and
                     presumed-lost sends, with capped exponential
                     backoff + jitter honoring the server's
                     retry_after_us hint (0 = no retries) [default: 3]
    --no-verify      skip the local bitwise oracle (needed for backends
                     whose batched kernels are not per-item loops).
                     Verification covers completed responses only —
                     Busy/Expired/Failed rejections are reported in
                     their own classes, never as mismatches
    --no-shutdown    leave the server running afterwards
    --json           print the machine-readable report to stdout
    --out PATH       write the JSON report to PATH (BENCH_loadgen.json)
";

struct RunArgs {
    cfg: ExperimentConfig,
    names: Vec<String>,
    json_stdout: bool,
    out: Option<String>,
    markdown: bool,
    strict: bool,
}

/// Set once stdout's downstream pipe closes (e.g. `laab list | head`).
/// Rust ignores SIGPIPE, so a plain `println!` would panic; instead later
/// stdout writes become no-ops while the run itself — `--out` files and
/// the `--strict` exit code — still completes.
static STDOUT_CLOSED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Print a line to stdout, tolerating a closed pipe.
fn emit(text: &str) {
    use std::sync::atomic::Ordering;
    if STDOUT_CLOSED.load(Ordering::Relaxed) {
        return;
    }
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).and_then(|()| out.write_all(b"\n")).is_err() {
        STDOUT_CLOSED.store(true, Ordering::Relaxed);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => match parse_run_args(args) {
            Ok(Some(run_args)) => run(run_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("bench") => match parse_bench_args(args) {
            Ok(Some(bench_args)) => run_bench(bench_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("serve") => match parse_serve_args(args) {
            Ok(Some(serve_args)) => run_serve(serve_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("loadgen") => match parse_loadgen_args(args) {
            Ok(Some(loadgen_args)) => run_loadgen(loadgen_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("list") => {
            for e in Experiment::ALL {
                emit(&format!("{:<10} {}", e.id(), e.describe()));
            }
            emit("\nmachine-readable reports:");
            for spec in &bench_registry::BENCHES {
                emit(&format!(
                    "{:<10} {}  ({} -> {})",
                    spec.name, spec.description, spec.schema, spec.artifact
                ));
            }
            emit("\nexecution backends (laab serve --backends):");
            // The deferred backend registers on first use; force it so the
            // listing shows every built-in, not just the always-registered
            // eager three.
            laab::deferred::ensure_registered();
            for reg in laab::backend::registry::all() {
                emit(&format!("{:<10} {}", reg.name(), reg.description()));
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            emit(USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parse `laab run` arguments. `Ok(None)` means `--help` was requested.
fn parse_run_args(args: impl Iterator<Item = String>) -> Result<Option<RunArgs>, String> {
    let mut cfg = ExperimentConfig::default();
    let mut out = RunArgs {
        cfg,
        names: Vec::new(),
        json_stdout: false,
        out: None,
        markdown: false,
        strict: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                cfg.n = 64;
                cfg.timing = TimingConfig::quick();
            }
            "--n" => cfg.n = parse_num(args.next(), "--n")?,
            "--reps" => cfg.timing.reps = parse_num(args.next(), "--reps")?,
            "--warmup" => cfg.timing.warmup = parse_num(args.next(), "--warmup")?,
            "--seed" => cfg.seed = parse_num(args.next(), "--seed")?,
            "--no-check" => cfg.check_numerics = false,
            "--json" => out.json_stdout = true,
            "--out" => {
                out.out = Some(args.next().ok_or("--out requires a path")?);
            }
            "--md" => out.markdown = true,
            "--strict" => out.strict = true,
            "--help" | "-h" => return Ok(None),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}`"));
            }
            name => out.names.push(name.to_string()),
        }
    }
    if cfg.timing.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    out.cfg = cfg;
    Ok(Some(out))
}

struct BenchArgs {
    cfg: GemmBenchConfig,
    json_stdout: bool,
    out: Option<String>,
}

/// Parse `laab bench` arguments. `Ok(None)` means `--help` was requested.
fn parse_bench_args(args: impl Iterator<Item = String>) -> Result<Option<BenchArgs>, String> {
    let mut out = BenchArgs { cfg: GemmBenchConfig::default(), json_stdout: false, out: None };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => out.cfg.quick = true,
            "--reps" => out.cfg.reps = parse_num(args.next(), "--reps")?,
            "--warmup" => out.cfg.warmup = parse_num(args.next(), "--warmup")?,
            "--threads" => out.cfg.threads = parse_num(args.next(), "--threads")?,
            "--seed" => out.cfg.seed = parse_num(args.next(), "--seed")?,
            "--json" => out.json_stdout = true,
            "--out" => out.out = Some(args.next().ok_or("--out requires a path")?),
            "--help" | "-h" => return Ok(None),
            flag => return Err(format!("unknown option `{flag}` for `laab bench`")),
        }
    }
    if out.cfg.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(Some(out))
}

fn run_bench(args: BenchArgs) -> ExitCode {
    eprintln!(
        "benchmarking GEMM engine ({} protocol, {} reps)...",
        if args.cfg.quick { "quick" } else { "full" },
        args.cfg.reps
    );
    let report = gemm_bench::run(&args.cfg);
    if args.json_stdout {
        emit(&report.to_json());
    } else {
        emit(&report.summary_table().to_string());
        let batch_line = report
            .summary
            .batch_sizes
            .iter()
            .zip(&report.summary.batch_gflops)
            .map(|(q, g)| format!("b{q} {g:.2}"))
            .collect::<Vec<_>>()
            .join(", ");
        emit(&format!(
            "engine {:.2} GFLOP/s vs seed kernel {:.2} GFLOP/s on {} (1 thread): {:.2}x\n\
             f32 engine {:.2} GFLOP/s on the same anchor: {:.2}x the f64 rate\n\
             wide-short parallel speedup ({} threads): {:.2}x\n\
             multi-RHS anchor GFLOP/s (GEMV-shaped, interleaved): {batch_line}",
            report.summary.engine_gflops,
            report.summary.seed_gflops,
            report.summary.anchor,
            report.summary.speedup_vs_seed,
            report.summary.f32_engine_gflops,
            report.summary.f32_over_f64,
            report.summary.threads,
            report.summary.wide_short_parallel_speedup,
        ));
    }
    if let Some(path) = &args.out {
        let json = report.to_json();
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

struct ServeArgs {
    cfg: ServeConfig,
    listen: Option<String>,
    record_arrivals: Option<String>,
    json_stdout: bool,
    out: Option<String>,
}

/// Parse a `--dtype` value shared by `laab serve` and `laab loadgen`.
fn parse_dtype(value: Option<String>) -> Result<Option<laab::serve::Dtype>, String> {
    match value.ok_or("--dtype requires a value")?.as_str() {
        "f32" => Ok(Some(laab::serve::Dtype::F32)),
        "f64" => Ok(Some(laab::serve::Dtype::F64)),
        "mixed" => Ok(None),
        other => Err(format!("invalid value `{other}` for --dtype (expected f32, f64, or mixed)")),
    }
}

/// Parse a comma-separated name list (`--backends`, `--arrivals`).
fn parse_list(value: Option<String>, flag: &str) -> Result<Vec<String>, String> {
    let list: Vec<String> = value
        .ok_or_else(|| format!("{flag} requires a comma-separated list"))?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if list.is_empty() {
        return Err(format!("{flag} requires at least one entry"));
    }
    Ok(list)
}

/// Parse `laab serve` arguments. `Ok(None)` means `--help` was requested.
/// Construction goes through [`ServeConfig::builder`] so every invalid
/// combination — unknown backends, `--clients 0`, a coalescing window
/// without a deadline — is rejected here with a usage error, not deep in
/// the run.
fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<Option<ServeArgs>, String> {
    let mut builder = ServeConfig::builder();
    let mut listen = None;
    let mut record_arrivals = None;
    let mut json_stdout = false;
    let mut out = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --smoke reseeds the whole base protocol; flags after it
            // refine it (flags before it are overwritten, like --quick
            // in `laab run`).
            "--smoke" => builder = ServeConfig::smoke_builder(),
            "--requests" => builder = builder.requests(parse_num(args.next(), "--requests")?),
            "--clients" => builder = builder.clients(parse_num(args.next(), "--clients")?),
            "--n" => builder = builder.n(parse_num(args.next(), "--n")?),
            "--seed" => builder = builder.seed(parse_num(args.next(), "--seed")?),
            "--backends" => builder = builder.backends(parse_list(args.next(), "--backends")?),
            "--dtype" => builder = builder.dtype(parse_dtype(args.next())?),
            "--opt" => {
                let value = args.next().ok_or("--opt requires a level (passes | egraph)")?;
                let level = laab::serve::OptLevel::from_id(&value)
                    .ok_or_else(|| format!("unknown --opt level `{value}` (passes | egraph)"))?;
                builder = builder.opt(level);
            }
            "--dispatch-us" => {
                builder = builder.dispatch_us(parse_num(args.next(), "--dispatch-us")?);
            }
            "--no-fusion" => builder = builder.fusion(false),
            "--batch-window" => {
                builder = builder.batch_window(parse_num(args.next(), "--batch-window")?);
            }
            "--batch-deadline-us" => {
                builder = builder.batch_deadline_us(parse_num(args.next(), "--batch-deadline-us")?);
            }
            "--arrival-rate" => {
                builder = builder.arrival_rate(parse_num(args.next(), "--arrival-rate")?);
            }
            "--no-batch" => builder = builder.batch_window(0),
            "--max-inflight" => {
                builder = builder.max_inflight(parse_num(args.next(), "--max-inflight")?);
            }
            "--backlog" => builder = builder.backlog(parse_num(args.next(), "--backlog")?),
            "--quarantine-after" => {
                builder = builder.quarantine_after(parse_num(args.next(), "--quarantine-after")?);
            }
            "--read-timeout-ms" => {
                builder = builder.read_timeout_ms(parse_num(args.next(), "--read-timeout-ms")?);
            }
            "--faults" => {
                let spec = args.next().ok_or("--faults requires a fault spec")?;
                let plan = laab::serve::FaultPlan::parse(&spec)
                    .map_err(|e| format!("invalid --faults spec: {e}"))?;
                builder = builder.faults(Some(plan));
            }
            "--listen" => listen = Some(args.next().ok_or("--listen requires an address")?),
            "--record-arrivals" => {
                record_arrivals = Some(args.next().ok_or("--record-arrivals requires a path")?);
            }
            "--json" => json_stdout = true,
            "--out" => out = Some(args.next().ok_or("--out requires a path")?),
            "--help" | "-h" => return Ok(None),
            flag => return Err(format!("unknown option `{flag}` for `laab serve`")),
        }
    }
    if record_arrivals.is_some() && listen.is_none() {
        return Err("--record-arrivals only applies to a --listen server".into());
    }
    let cfg = builder.build().map_err(|e| e.to_string())?;
    Ok(Some(ServeArgs { cfg, listen, record_arrivals, json_stdout, out }))
}

struct LoadgenArgs {
    cfg: loadgen::LoadgenConfig,
    json_stdout: bool,
    out: Option<String>,
}

/// Parse `laab loadgen` arguments. `Ok(None)` means `--help` was
/// requested.
fn parse_loadgen_args(args: impl Iterator<Item = String>) -> Result<Option<LoadgenArgs>, String> {
    let mut cfg = loadgen::LoadgenConfig {
        addr: String::new(),
        requests: 512,
        connections: 2,
        n: 192,
        seed: 0x1AAB,
        churn_every: 16,
        dtype: None,
        backend: "engine".to_string(),
        arrivals: vec![
            loadgen::Arrival::Closed,
            loadgen::Arrival::OpenPoisson { rate: 2000.0 },
            loadgen::Arrival::Bursty { rate: 2000.0, burst: 8 },
        ],
        deadline_us: 0,
        max_retries: 3,
        verify: true,
        shutdown: true,
        smoke: false,
    };
    let mut json_stdout = false;
    let mut out = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = args.next().ok_or("--addr requires an address")?,
            "--smoke" => {
                let addr = std::mem::take(&mut cfg.addr);
                cfg = loadgen::LoadgenConfig::smoke(&addr);
            }
            "--requests" => cfg.requests = parse_num(args.next(), "--requests")?,
            "--connections" => cfg.connections = parse_num(args.next(), "--connections")?,
            "--n" => cfg.n = parse_num(args.next(), "--n")?,
            "--seed" => cfg.seed = parse_num(args.next(), "--seed")?,
            "--backend" => cfg.backend = args.next().ok_or("--backend requires a name")?,
            "--dtype" => cfg.dtype = parse_dtype(args.next())?,
            "--arrivals" => {
                cfg.arrivals = parse_list(args.next(), "--arrivals")?
                    .iter()
                    .map(|s| loadgen::Arrival::parse(s).map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--deadline-us" => cfg.deadline_us = parse_num(args.next(), "--deadline-us")?,
            "--max-retries" => cfg.max_retries = parse_num(args.next(), "--max-retries")?,
            "--no-verify" => cfg.verify = false,
            "--no-shutdown" => cfg.shutdown = false,
            "--json" => json_stdout = true,
            "--out" => out = Some(args.next().ok_or("--out requires a path")?),
            "--help" | "-h" => return Ok(None),
            flag => return Err(format!("unknown option `{flag}` for `laab loadgen`")),
        }
    }
    if cfg.addr.is_empty() {
        return Err("--addr is required (the server's unix:<path> or tcp:<host:port>)".into());
    }
    Ok(Some(LoadgenArgs { cfg, json_stdout, out }))
}

fn run_loadgen(args: LoadgenArgs) -> ExitCode {
    eprintln!(
        "driving {} with {} requests x {} arrival processes over {} connections...",
        args.cfg.addr,
        args.cfg.requests,
        args.cfg.arrivals.len(),
        args.cfg.connections,
    );
    let report = match loadgen::run(&args.cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json_stdout {
        emit(&report.to_json());
    } else {
        for run in &report.runs {
            emit(&format!(
                "{:<18} {:>6}/{} ok  rtt p50 {:>8.1} us  p99 {:>8.1} us  \
                 queue p50 {:>7.1} us  occupancy {:.2}  \
                 flushes occ/deadline/drain/pressure {}/{}/{}/{}  \
                 goodput {:.0} of {:.0} offered req/s",
                run.arrival,
                run.completed,
                run.sent,
                run.rtt_p50_us,
                run.rtt_p99_us,
                run.queue_p50_us,
                run.occupancy_mean,
                run.occupancy_flushes,
                run.deadline_flushes,
                run.drain_flushes,
                run.pressure_flushes,
                run.goodput_rps,
                run.offered_rps,
            ));
        }
        if report.busy_total + report.expired_total + report.failed_total + report.retries_total > 0
        {
            emit(&format!(
                "rejections: {} busy, {} expired, {} failed; {} retries",
                report.busy_total, report.expired_total, report.failed_total, report.retries_total,
            ));
        }
        if report.verified {
            emit(&format!(
                "bitwise vs in-process oracle: {} mismatches (completed responses only)",
                report.checksum_mismatches
            ));
        }
    }
    if let Some(path) = &args.out {
        let json = report.to_json();
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if report.verified && report.checksum_mismatches > 0 {
        eprintln!("error: the socket path diverged from the in-process oracle");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_serve(args: ServeArgs) -> ExitCode {
    if let Some(spec) = &args.listen {
        let mut server = match Server::bind(spec, &args.cfg) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(path) = &args.record_arrivals {
            server = server.record_arrivals(path);
            eprintln!("recording inter-arrival gaps to {path} (written at shutdown)");
        }
        eprintln!(
            "listening on {} (backends: {}, window {}, deadline {} us); \
             send a shutdown frame (laab loadgen) to stop",
            server.local_addr(),
            args.cfg.backends.join(","),
            args.cfg.batch_window,
            args.cfg.batch_deadline_us,
        );
        return match server.run() {
            Ok(stats) => {
                eprintln!(
                    "served {} requests over {} connections ({} rejected, {} shed, \
                     {} expired, {} failed, {} quarantined, {} reaped); \
                     flushes occ/deadline/drain/pressure {}/{}/{}/{}",
                    stats.served,
                    stats.connections,
                    stats.rejected,
                    stats.shed,
                    stats.expired,
                    stats.failed,
                    stats.quarantined,
                    stats.reaped,
                    stats.admission.occupancy_flushes,
                    stats.admission.deadline_flushes,
                    stats.admission.drain_flushes,
                    stats.admission.pressure_flushes,
                );
                let f = stats.faults;
                if f.drops + f.delays + f.panics + f.corrupts > 0 {
                    eprintln!(
                        "injected faults: {} drops, {} delays, {} panics, {} corrupts",
                        f.drops, f.delays, f.panics, f.corrupts,
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    eprintln!(
        "serving {} synthetic requests ({} protocol, base n = {}, backends: {}, opt: {}, {})...",
        args.cfg.requests,
        if args.cfg.smoke { "smoke" } else { "full" },
        args.cfg.n,
        args.cfg.backends.join(","),
        if args.cfg.opt == serve::OptLevel::Egraph { "egraph A/B" } else { "passes" },
        if args.cfg.batching_enabled() {
            format!("batch window {}", args.cfg.batch_window)
        } else {
            "batching off".to_string()
        }
    );
    let report = match serve::run(&args.cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json_stdout {
        emit(&report.to_json());
    } else {
        emit(&report.summary_table().to_string());
        if report.backends.len() > 1 {
            emit(&report.backend_table().to_string());
        }
        if report.opt_levels.len() > 1 {
            let levels = report
                .opt_levels
                .iter()
                .map(|l| format!("{} p50 {:.3} ms / mean {:.3} ms", l.level, l.p50_ms, l.mean_ms))
                .collect::<Vec<_>>()
                .join("; ");
            emit(&format!(
                "optimizer A/B: {levels}; {} probes, {} mismatches, {} budget hits",
                report.opt_probes, report.opt_mismatches, report.saturation_budget_hits,
            ));
            for f in &report.opt_families {
                if f.changed {
                    emit(&format!(
                        "  {}: egraph found a cheaper plan (cost {} -> {}), \
                         measured {:.3} ms vs {:.3} ms ({:.2}x)",
                        f.family,
                        f.original_cost,
                        f.extracted_cost,
                        f.passes_mean_ms,
                        f.egraph_mean_ms,
                        f.egraph_speedup,
                    ));
                }
            }
        }
        if report.deferred.enabled {
            let d = &report.deferred;
            emit(&format!(
                "deferred backend (dispatch {} us/group, fusion {}): \
                 {} tape ops in {} groups ({} fused, {} solo), \
                 flushes cap/materialize/barrier {}/{}/{}\n\
                 modeled dispatch {:.3} ms vs compute {:.3} ms; \
                 {} equivalence probes, {} mismatches",
                d.dispatch_us,
                if d.fusion { "on" } else { "off" },
                d.tape_ops,
                d.groups,
                d.fused_ops,
                d.unfused_ops,
                d.flush_capacity,
                d.flush_materialize,
                d.flush_barrier,
                d.dispatch_ns as f64 / 1e6,
                d.compute_ns as f64 / 1e6,
                d.probes,
                d.mismatches,
            ));
            for f in &d.families {
                if f.fused_ops > 0 {
                    emit(&format!(
                        "  {}: {} of {} ops fused, dispatch share {:.1}%, \
                         fused {:.3} ms vs unfused {:.3} ms ({:.2}x)",
                        f.family,
                        f.fused_ops,
                        f.tape_ops,
                        100.0 * f.dispatch_share,
                        f.fused_mean_ms,
                        f.unfused_mean_ms,
                        f.fused_speedup,
                    ));
                }
            }
        }
        emit(&format!(
            "{:.0} executions/s over {} clients; p50 {:.3} ms, p99 {:.3} ms\n\
             plan cache: {} hits / {} misses ({} retraces, {} evictions, \
             {} evicted recompiles @ {:.3} ms), hit rate {:.3}\n\
             cold trace {:.3} ms vs cache hit {:.3} ms: {:.2}x",
            report.requests_per_sec,
            report.clients_resolved,
            report.p50_ms,
            report.p99_ms,
            report.cache.hits,
            report.cache.misses,
            report.cache.retraces,
            report.cache.evictions,
            report.cache.evicted_recompiles,
            report.cache.mean_recompile_ms,
            report.cache.hit_rate,
            report.cold_trace_mean_ms,
            report.cache_hit_mean_ms,
            report.cache_hit_speedup,
        ));
        if report.batching.enabled {
            let b = &report.batching;
            emit(&format!(
                "batching: window {}, {} batches (mean occupancy {:.2}, max {}), \
                 {} stacked / {} fallback / {} solo\n\
                 batched {:.3} ms vs solo {:.3} ms per request: {:.2}x \
                 ({:.0} vs {:.0} req/s over coalesced batches)",
                b.window,
                b.batches,
                b.mean_occupancy,
                b.max_occupancy,
                b.stacked_batches,
                b.fallback_batches,
                b.solo_batches,
                b.batched_mean_ms,
                b.solo_mean_ms,
                b.batched_speedup,
                b.batched_requests_per_sec,
                b.solo_requests_per_sec,
            ));
        }
        let a = &report.admission;
        emit(&format!(
            "live admission (poisson {:.0} req/s, window {}, deadline {} us): \
             queue delay p50 {:.1} us / p99 {:.1} us, \
             flushes occ/deadline/drain {}/{}/{} over {} batches; \
             sweep: {} operating points",
            a.arrival_rate,
            a.window,
            a.deadline_us,
            a.queue_delay_p50_us,
            a.queue_delay_p99_us,
            a.occupancy_flushes,
            a.deadline_flushes,
            a.drain_flushes,
            a.batches,
            report.sweep.len(),
        ));
        if !report.overload.is_empty() {
            let curve = report
                .overload
                .iter()
                .map(|o| format!("{:.0}->{:.0}", o.offered_rps, o.goodput_rps))
                .collect::<Vec<_>>()
                .join(", ");
            let (shed, expired): (u64, u64) =
                report.overload.iter().fold((0, 0), |(s, x), o| (s + o.shed, x + o.expired));
            emit(&format!(
                "overload (backlog {}, deadline {} us): offered->goodput req/s {curve}; \
                 {shed} shed, {expired} expired",
                report.overload[0].backlog, report.overload[0].deadline_us,
            ));
        }
    }
    if let Some(path) = &args.out {
        let json = report.to_json();
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn parse_num<T: std::str::FromStr>(value: Option<String>, flag: &str) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|_| format!("invalid value `{v}` for {flag}"))
}

fn run(args: RunArgs) -> ExitCode {
    let plan = match runner::parse_experiments(&args.names) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = runner::run_with(&args.cfg, &plan, |exp, record| {
        // Stream results as they land. With --json, stdout is reserved for
        // the report, so only a progress line goes to stderr.
        if args.json_stdout {
            eprintln!("# finished {} in {:.2}s", exp.id(), record.wall_secs);
        } else if args.markdown {
            emit(&record.result.to_markdown());
        } else {
            emit(&format_result_text(&record.result, record.wall_secs));
        }
    });

    if !args.json_stdout {
        emit(&report.summary_table().to_string());
    }

    let json = report.to_json();
    if args.json_stdout {
        emit(&json);
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if args.strict && !report.all_checks_pass() {
        eprintln!("strict mode: not every paper finding reproduced");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn format_result_text(result: &laab::suite::ExperimentResult, wall: f64) -> String {
    let mut s = format!("=== {} ({}) — {wall:.2}s ===\n", result.title, result.id);
    s.push_str(&format!("{}\n", result.table));
    s.push_str(&format!("{}\n", result.analysis));
    s.push_str("paper findings:\n");
    for c in &result.checks {
        s.push_str(&format!(
            "  [{}] {} — {}\n",
            if c.passed { "ok" } else { "XX" },
            c.name,
            c.detail
        ));
    }
    s
}
