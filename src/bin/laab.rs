//! `laab` — the unified runner for the Linear Algebra Awareness Benchmark.
//!
//! ```text
//! laab run [OPTIONS] [EXPERIMENT]...   run experiments (default: all)
//! laab bench [OPTIONS]                 GEMM engine perf trajectory
//! laab serve [OPTIONS]                 plan-cache serving throughput
//! laab list                            list experiments + report formats
//! laab help                            this message
//! ```
//!
//! See `laab help` (or the README) for the option reference.

use std::io::Write;
use std::process::ExitCode;

use laab::serve::{self, ServeConfig};
use laab::suite::bench_registry;
use laab::suite::gemm_bench::{self, GemmBenchConfig};
use laab::suite::runner::{self, Experiment};
use laab::suite::ExperimentConfig;
use laab_stats::TimingConfig;

const USAGE: &str = "\
laab — Linear Algebra Awareness Benchmark runner (arXiv:2202.09888)

USAGE:
    laab run [OPTIONS] [EXPERIMENT]...
    laab bench [BENCH OPTIONS]
    laab serve [SERVE OPTIONS]
    laab list
    laab help

EXPERIMENTS:
    fig1 table1 table2 table3 table4 table5 table6 fig6 fig7 ext_solve
    (none given: run everything in paper order)

OPTIONS:
    --quick          smoke protocol: n = 64, 5 reps (for CI and try-outs)
    --n N            problem size          [default: 512; paper: 3000]
    --reps R         timed repetitions     [default: 20]
    --warmup W       discarded warmup runs [default: 2]
    --seed S         operand seed          [default: 6827 (0x1AAB)]
    --no-check       skip numeric cross-validation of variants
    --json           print the machine-readable report to stdout
                     (tables are suppressed; combine with --out to keep both)
    --out PATH       write the JSON report to PATH (BENCH_*.json format)
    --md             print results as markdown instead of plain text
    --strict         exit non-zero unless every paper finding reproduces

BENCH OPTIONS (laab bench — GEMM engine GFLOP/s trajectory):
    --quick          tiny shapes for CI smoke runs
    --reps R         timed repetitions per shape   [default: 5]
    --warmup W       discarded warmups per shape   [default: 1]
    --threads N      N-thread measurements         [default: detected cores]
    --seed S         operand seed                  [default: 6827 (0x1AAB)]
    --json           print the machine-readable report to stdout
    --out PATH       write the JSON report to PATH (BENCH_gemm.json format)

SERVE OPTIONS (laab serve — compiled-plan cache serving throughput):
    --smoke          CI smoke protocol: n = 48, 320 requests
    --requests R     synthetic requests to drain   [default: 2048]
    --clients C      serving clients               [default: detected, max 8]
    --n N            base operand size             [default: 192]
    --seed S         stream/operand seed           [default: 6827 (0x1AAB)]
    --backends LIST  comma-separated execution backends to A/B under the
                     same interleaved traffic      [default: engine]
                     (built-ins: engine, seed, reference; first = baseline)
    --dtype D        pin request precision: f32 | f64 | mixed
                                                   [default: mixed]
    --batch-window N admission window: coalesce up to N pending
                     same-signature requests into one batched (multi-RHS)
                     execution; measures batched vs solo interleaved
                                                   [default: 8]
    --no-batch       disable batching (same as --batch-window 0)
    --json           print the machine-readable report to stdout
    --out PATH       write the JSON report to PATH (BENCH_serve.json format)
";

struct RunArgs {
    cfg: ExperimentConfig,
    names: Vec<String>,
    json_stdout: bool,
    out: Option<String>,
    markdown: bool,
    strict: bool,
}

/// Set once stdout's downstream pipe closes (e.g. `laab list | head`).
/// Rust ignores SIGPIPE, so a plain `println!` would panic; instead later
/// stdout writes become no-ops while the run itself — `--out` files and
/// the `--strict` exit code — still completes.
static STDOUT_CLOSED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Print a line to stdout, tolerating a closed pipe.
fn emit(text: &str) {
    use std::sync::atomic::Ordering;
    if STDOUT_CLOSED.load(Ordering::Relaxed) {
        return;
    }
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).and_then(|()| out.write_all(b"\n")).is_err() {
        STDOUT_CLOSED.store(true, Ordering::Relaxed);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => match parse_run_args(args) {
            Ok(Some(run_args)) => run(run_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("bench") => match parse_bench_args(args) {
            Ok(Some(bench_args)) => run_bench(bench_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("serve") => match parse_serve_args(args) {
            Ok(Some(serve_args)) => run_serve(serve_args),
            Ok(None) => {
                emit(USAGE);
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("list") => {
            for e in Experiment::ALL {
                emit(&format!("{:<10} {}", e.id(), e.describe()));
            }
            emit("\nmachine-readable reports:");
            for spec in &bench_registry::BENCHES {
                emit(&format!(
                    "{:<10} {}  ({} -> {})",
                    spec.name, spec.description, spec.schema, spec.artifact
                ));
            }
            emit("\nexecution backends (laab serve --backends):");
            for reg in laab::backend::registry::all() {
                emit(&format!("{:<10} {}", reg.name(), reg.description()));
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            emit(USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parse `laab run` arguments. `Ok(None)` means `--help` was requested.
fn parse_run_args(args: impl Iterator<Item = String>) -> Result<Option<RunArgs>, String> {
    let mut cfg = ExperimentConfig::default();
    let mut out = RunArgs {
        cfg,
        names: Vec::new(),
        json_stdout: false,
        out: None,
        markdown: false,
        strict: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                cfg.n = 64;
                cfg.timing = TimingConfig::quick();
            }
            "--n" => cfg.n = parse_num(args.next(), "--n")?,
            "--reps" => cfg.timing.reps = parse_num(args.next(), "--reps")?,
            "--warmup" => cfg.timing.warmup = parse_num(args.next(), "--warmup")?,
            "--seed" => cfg.seed = parse_num(args.next(), "--seed")?,
            "--no-check" => cfg.check_numerics = false,
            "--json" => out.json_stdout = true,
            "--out" => {
                out.out = Some(args.next().ok_or("--out requires a path")?);
            }
            "--md" => out.markdown = true,
            "--strict" => out.strict = true,
            "--help" | "-h" => return Ok(None),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}`"));
            }
            name => out.names.push(name.to_string()),
        }
    }
    if cfg.timing.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    out.cfg = cfg;
    Ok(Some(out))
}

struct BenchArgs {
    cfg: GemmBenchConfig,
    json_stdout: bool,
    out: Option<String>,
}

/// Parse `laab bench` arguments. `Ok(None)` means `--help` was requested.
fn parse_bench_args(args: impl Iterator<Item = String>) -> Result<Option<BenchArgs>, String> {
    let mut out = BenchArgs { cfg: GemmBenchConfig::default(), json_stdout: false, out: None };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => out.cfg.quick = true,
            "--reps" => out.cfg.reps = parse_num(args.next(), "--reps")?,
            "--warmup" => out.cfg.warmup = parse_num(args.next(), "--warmup")?,
            "--threads" => out.cfg.threads = parse_num(args.next(), "--threads")?,
            "--seed" => out.cfg.seed = parse_num(args.next(), "--seed")?,
            "--json" => out.json_stdout = true,
            "--out" => out.out = Some(args.next().ok_or("--out requires a path")?),
            "--help" | "-h" => return Ok(None),
            flag => return Err(format!("unknown option `{flag}` for `laab bench`")),
        }
    }
    if out.cfg.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(Some(out))
}

fn run_bench(args: BenchArgs) -> ExitCode {
    eprintln!(
        "benchmarking GEMM engine ({} protocol, {} reps)...",
        if args.cfg.quick { "quick" } else { "full" },
        args.cfg.reps
    );
    let report = gemm_bench::run(&args.cfg);
    if args.json_stdout {
        emit(&report.to_json());
    } else {
        emit(&report.summary_table().to_string());
        let batch_line = report
            .summary
            .batch_sizes
            .iter()
            .zip(&report.summary.batch_gflops)
            .map(|(q, g)| format!("b{q} {g:.2}"))
            .collect::<Vec<_>>()
            .join(", ");
        emit(&format!(
            "engine {:.2} GFLOP/s vs seed kernel {:.2} GFLOP/s on {} (1 thread): {:.2}x\n\
             f32 engine {:.2} GFLOP/s on the same anchor: {:.2}x the f64 rate\n\
             wide-short parallel speedup ({} threads): {:.2}x\n\
             multi-RHS anchor GFLOP/s (GEMV-shaped, interleaved): {batch_line}",
            report.summary.engine_gflops,
            report.summary.seed_gflops,
            report.summary.anchor,
            report.summary.speedup_vs_seed,
            report.summary.f32_engine_gflops,
            report.summary.f32_over_f64,
            report.summary.threads,
            report.summary.wide_short_parallel_speedup,
        ));
    }
    if let Some(path) = &args.out {
        let json = report.to_json();
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

struct ServeArgs {
    cfg: ServeConfig,
    json_stdout: bool,
    out: Option<String>,
}

/// Parse `laab serve` arguments. `Ok(None)` means `--help` was requested.
fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<Option<ServeArgs>, String> {
    let mut out = ServeArgs { cfg: ServeConfig::default(), json_stdout: false, out: None };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --smoke selects the whole base protocol; flags after it
            // refine it (flags before it are overwritten, like --quick
            // in `laab run`).
            "--smoke" => out.cfg = ServeConfig::smoke(),
            "--requests" => out.cfg.requests = parse_num(args.next(), "--requests")?,
            "--clients" => out.cfg.clients = parse_num(args.next(), "--clients")?,
            "--n" => out.cfg.n = parse_num(args.next(), "--n")?,
            "--seed" => out.cfg.seed = parse_num(args.next(), "--seed")?,
            "--backends" => {
                let list = args.next().ok_or("--backends requires a comma-separated list")?;
                out.cfg.backends = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if out.cfg.backends.is_empty() {
                    return Err("--backends requires at least one backend name".into());
                }
            }
            "--dtype" => {
                out.cfg.dtype = match args.next().ok_or("--dtype requires a value")?.as_str() {
                    "f32" => Some(laab::serve::Dtype::F32),
                    "f64" => Some(laab::serve::Dtype::F64),
                    "mixed" => None,
                    other => {
                        return Err(format!(
                            "invalid value `{other}` for --dtype (expected f32, f64, or mixed)"
                        ))
                    }
                };
            }
            "--batch-window" => {
                out.cfg.batch_window = parse_num(args.next(), "--batch-window")?;
            }
            "--no-batch" => out.cfg.batch_window = 0,
            "--json" => out.json_stdout = true,
            "--out" => out.out = Some(args.next().ok_or("--out requires a path")?),
            "--help" | "-h" => return Ok(None),
            flag => return Err(format!("unknown option `{flag}` for `laab serve`")),
        }
    }
    if out.cfg.requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    Ok(Some(out))
}

fn run_serve(args: ServeArgs) -> ExitCode {
    eprintln!(
        "serving {} synthetic requests ({} protocol, base n = {}, backends: {}, {})...",
        args.cfg.requests,
        if args.cfg.smoke { "smoke" } else { "full" },
        args.cfg.n,
        args.cfg.backends.join(","),
        if args.cfg.batching_enabled() {
            format!("batch window {}", args.cfg.batch_window)
        } else {
            "batching off".to_string()
        }
    );
    let report = match serve::run(&args.cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json_stdout {
        emit(&report.to_json());
    } else {
        emit(&report.summary_table().to_string());
        if report.backends.len() > 1 {
            emit(&report.backend_table().to_string());
        }
        emit(&format!(
            "{:.0} executions/s over {} clients; p50 {:.3} ms, p99 {:.3} ms\n\
             plan cache: {} hits / {} misses ({} retraces, {} evictions, \
             {} evicted recompiles @ {:.3} ms), hit rate {:.3}\n\
             cold trace {:.3} ms vs cache hit {:.3} ms: {:.2}x",
            report.requests_per_sec,
            report.clients,
            report.p50_ms,
            report.p99_ms,
            report.cache.hits,
            report.cache.misses,
            report.cache.retraces,
            report.cache.evictions,
            report.cache.evicted_recompiles,
            report.cache.mean_recompile_ms,
            report.cache.hit_rate,
            report.cold_trace_mean_ms,
            report.cache_hit_mean_ms,
            report.cache_hit_speedup,
        ));
        if report.batching.enabled {
            let b = &report.batching;
            emit(&format!(
                "batching: window {}, {} batches (mean occupancy {:.2}, max {}), \
                 {} stacked / {} fallback / {} solo\n\
                 batched {:.3} ms vs solo {:.3} ms per request: {:.2}x \
                 ({:.0} vs {:.0} req/s over coalesced batches)",
                b.window,
                b.batches,
                b.mean_occupancy,
                b.max_occupancy,
                b.stacked_batches,
                b.fallback_batches,
                b.solo_batches,
                b.batched_mean_ms,
                b.solo_mean_ms,
                b.batched_speedup,
                b.batched_requests_per_sec,
                b.solo_requests_per_sec,
            ));
        }
    }
    if let Some(path) = &args.out {
        let json = report.to_json();
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn parse_num<T: std::str::FromStr>(value: Option<String>, flag: &str) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|_| format!("invalid value `{v}` for {flag}"))
}

fn run(args: RunArgs) -> ExitCode {
    let plan = match runner::parse_experiments(&args.names) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = runner::run_with(&args.cfg, &plan, |exp, record| {
        // Stream results as they land. With --json, stdout is reserved for
        // the report, so only a progress line goes to stderr.
        if args.json_stdout {
            eprintln!("# finished {} in {:.2}s", exp.id(), record.wall_secs);
        } else if args.markdown {
            emit(&record.result.to_markdown());
        } else {
            emit(&format_result_text(&record.result, record.wall_secs));
        }
    });

    if !args.json_stdout {
        emit(&report.summary_table().to_string());
    }

    let json = report.to_json();
    if args.json_stdout {
        emit(&json);
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.write_all(b"\n")))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if args.strict && !report.all_checks_pass() {
        eprintln!("strict mode: not every paper finding reproduced");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn format_result_text(result: &laab::suite::ExperimentResult, wall: f64) -> String {
    let mut s = format!("=== {} ({}) — {wall:.2}s ===\n", result.title, result.id);
    s.push_str(&format!("{}\n", result.table));
    s.push_str(&format!("{}\n", result.analysis));
    s.push_str("paper findings:\n");
    for c in &result.checks {
        s.push_str(&format!(
            "  [{}] {} — {}\n",
            if c.passed { "ok" } else { "XX" },
            c.name,
            c.detail
        ));
    }
    s
}
