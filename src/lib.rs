//! # LAAB — Linear Algebra Awareness Benchmark
//!
//! A from-scratch Rust reproduction of *"Benchmarking the Linear Algebra
//! Awareness of TensorFlow and PyTorch"* (Sankaran, Akbari Alashti,
//! Psarras, Bientinesi — iWAPT/IPDPSW 2022, arXiv:2202.09888).
//!
//! The workspace builds every layer the paper's experiments touch:
//!
//! * [`dense`] — matrix storage and structured operand generators;
//! * [`kernels`] — a pure-Rust BLAS substrate (packed GEMM, TRMM, SYRK,
//!   structured kernels) with FLOP/call instrumentation;
//! * [`backend`] — pluggable execution backends (engine / seed /
//!   reference) behind one dispatch trait and a process-wide registry,
//!   the serve-side A/B axis;
//! * [`deferred`] — the lazy accelerator-model backend: node executions
//!   append to a per-plan tape, and flushes run a fusion pass (GEMM
//!   epilogues, same-shape launch coalescing) under an explicit
//!   dispatch-cost model before touching the engine kernels;
//! * [`expr`] — the symbolic test-expression layer with a matrix-property
//!   lattice and FLOP cost models;
//! * [`graph`] — the computational-graph IR with the Grappler-style
//!   optimizer (transpose folding, CSE, scale fusion, DCE);
//! * [`chain`] — matrix-chain parenthesization (DP, enumeration,
//!   `multi_dot`);
//! * [`rewrite`] — the derivation-graph rewriting engine and the
//!   property-dispatching evaluator (the "awareness" the paper finds
//!   missing);
//! * [`framework`] — the TF/PyT analogue under test (Eager + Graph modes,
//!   `Flow`/`Torch` profiles);
//! * [`serve`] — the compiled-plan cache and request-serving layer
//!   (signatures, plans, the sharded LRU cache, the `laab serve`
//!   throughput harness);
//! * [`stats`] — min-of-R timing and bootstrap significance;
//! * [`suite`] — the experiments themselves, one per paper table/figure.
//!
//! `docs/ARCHITECTURE.md` maps every crate to the paper experiments it
//! reproduces and draws the eager/graph/aware data-flow end to end.
//!
//! ## Quickstart
//!
//! ```
//! use laab::prelude::*;
//!
//! // Run the paper's Table II (CSE) experiment at a laptop-friendly size.
//! let cfg = ExperimentConfig::quick(64);
//! let result = laab::suite::experiments::table2(&cfg);
//! println!("{}", result.table);
//! ```

#![deny(missing_docs)]

pub use laab_backend as backend;
pub use laab_chain as chain;
pub use laab_core as suite;
pub use laab_deferred as deferred;
pub use laab_dense as dense;
pub use laab_expr as expr;
pub use laab_framework as framework;
pub use laab_graph as graph;
pub use laab_kernels as kernels;
pub use laab_rewrite as rewrite;
pub use laab_serve as serve;
pub use laab_stats as stats;

/// The most commonly used items in one import.
pub mod prelude {
    pub use laab_core::{run_all, ExperimentConfig, ExperimentResult};
    pub use laab_dense::{gen::OperandGen, Diagonal, Matrix, Scalar, Tridiagonal};
    pub use laab_expr::eval::Env;
    pub use laab_expr::{var, Context, Expr, Props};
    pub use laab_framework::{Framework, Profile, Tensor};
    pub use laab_kernels::Trans;
    pub use laab_rewrite::{optimize_expr, CostKind};
    pub use laab_stats::{Table, TimingConfig};
}
