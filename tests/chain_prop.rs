//! Property tests for the matrix-chain machinery: DP optimality against
//! exhaustive enumeration, and `multi_dot` value preservation.

use laab::prelude::*;
use laab_chain::{
    enumerate_parenthesizations, left_to_right, multi_dot, optimal_parenthesization, right_to_left,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_is_optimal_against_enumeration(
        dims in proptest::collection::vec(1usize..30, 3..8),
    ) {
        let m = dims.len() - 1;
        let (dp_cost, dp_tree) = optimal_parenthesization(&dims);
        prop_assert_eq!(dp_tree.cost(&dims), dp_cost);
        let brute = enumerate_parenthesizations(m)
            .into_iter()
            .map(|t| t.cost(&dims))
            .min()
            .unwrap();
        prop_assert_eq!(dp_cost, brute, "dims {:?}", dims);
    }

    #[test]
    fn every_parenthesization_computes_the_same_value(
        dims in proptest::collection::vec(1usize..12, 4..6),
        seed in any::<u64>(),
    ) {
        let m = dims.len() - 1;
        let mut g = OperandGen::new(seed);
        let mats: Vec<Matrix<f64>> =
            (0..m).map(|i| g.matrix(dims[i], dims[i + 1])).collect();
        let names: Vec<String> = (0..m).map(|i| format!("M{i}")).collect();
        let mut env = Env::new();
        for (name, mat) in names.iter().zip(&mats) {
            env.insert(name, mat.clone());
        }
        let factors: Vec<Expr> = names.iter().map(|s| var(s)).collect();
        let want = laab_expr::eval::eval(
            &left_to_right(m).to_expr(&factors), &env,
        );
        for tree in enumerate_parenthesizations(m) {
            let v = laab_expr::eval::eval(&tree.to_expr(&factors), &env);
            prop_assert!(
                v.approx_eq(&want, 1e-9),
                "order {} differs", tree.render()
            );
        }
    }

    #[test]
    fn multi_dot_matches_left_to_right(
        dims in proptest::collection::vec(1usize..20, 2..7),
        seed in any::<u64>(),
    ) {
        let m = dims.len() - 1;
        let mut g = OperandGen::new(seed);
        let mats: Vec<Matrix<f64>> =
            (0..m).map(|i| g.matrix(dims[i], dims[i + 1])).collect();
        let refs: Vec<&Matrix<f64>> = mats.iter().collect();
        let got = multi_dot(&refs);
        let mut want = mats[0].clone();
        for f in &mats[1..] {
            want = laab_kernels::matmul(&want, Trans::No, f, Trans::No);
        }
        prop_assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn vector_ends_pick_the_expected_direction(n in 2usize..200) {
        // …x at the right end → right-to-left; yᵀ… at the left → L→R.
        let (_, t1) = optimal_parenthesization(&[n, n, n, 1]);
        prop_assert_eq!(t1, right_to_left(3));
        let (_, t2) = optimal_parenthesization(&[1, n, n, n]);
        prop_assert_eq!(t2, left_to_right(3));
    }

    #[test]
    fn dp_cost_is_invariant_under_reversal(
        dims in proptest::collection::vec(1usize..30, 3..8),
    ) {
        // Reversing the chain (transposing the product) preserves the
        // optimal FLOP count.
        let (c1, _) = optimal_parenthesization(&dims);
        let rev: Vec<usize> = dims.iter().rev().copied().collect();
        let (c2, _) = optimal_parenthesization(&rev);
        prop_assert_eq!(c1, c2);
    }
}
