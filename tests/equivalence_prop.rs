//! Property test: every execution back-end computes the same value.
//!
//! A seeded generator produces random *well-typed* expressions over a small
//! operand set; each expression is evaluated through four independent
//! paths — the naive oracle, eager mode, optimized graph mode, and the
//! property-aware evaluator — and additionally through every variant the
//! rewrite engine derives. All must agree numerically.

use laab::prelude::*;
use laab_framework::lower::eager_eval_expr;
use laab_rewrite::{aware_eval, RewriteEngine};
use proptest::prelude::*;

/// Deterministic well-typed expression builder.
///
/// Grammar: square operands `A,B,H` (n×n, general), `L` (lower-tri), `S`
/// (symmetric), vectors `x,y` (n×1). Productions keep shapes conformal by
/// construction.
fn build_expr(seed: u64, depth: usize, n: usize) -> Expr {
    // Tiny xorshift so the test is hermetic (no rand dependency needed).
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }
    fn square(state: &mut u64, depth: usize, n: usize) -> Expr {
        if depth == 0 {
            return match next(state) % 5 {
                0 => var("A"),
                1 => var("B"),
                2 => var("H"),
                3 => var("L"),
                _ => var("S"),
            };
        }
        match next(state) % 8 {
            0 => square(state, depth - 1, n).t(),
            1 => square(state, depth - 1, n) * square(state, depth - 1, n),
            2 => square(state, depth - 1, n) + square(state, depth - 1, n),
            3 => square(state, depth - 1, n) - square(state, depth - 1, n),
            4 => laab_expr::scale(((next(state) % 5) as f64) - 2.0, square(state, depth - 1, n)),
            5 => laab_expr::identity(n) - square(state, depth - 1, n),
            6 => {
                let x = square(state, depth - 1, n);
                x.clone() * x.t()
            }
            _ => square(state, depth - 1, n),
        }
    }
    fn full(state: &mut u64, depth: usize, n: usize) -> Expr {
        match next(state) % 4 {
            // A square expression…
            0 | 1 => square(state, depth, n),
            // …applied to a vector (chains ending in x)…
            2 => square(state, depth, n) * var("x"),
            // …or sliced.
            _ => {
                let m = square(state, depth, n);
                let i = (next(state) % n as u64) as usize;
                let j = (next(state) % n as u64) as usize;
                laab_expr::elem(m, i, j)
            }
        }
    }
    let mut state = seed | 1;
    full(&mut state, depth, n)
}

fn workload(n: usize, seed: u64) -> (Env<f32>, Context) {
    let mut g = OperandGen::new(seed);
    let env = Env::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("H", g.matrix(n, n))
        .with("L", g.lower_triangular(n))
        .with("S", g.symmetric(n))
        .with("x", g.matrix(n, 1))
        .with("y", g.matrix(n, 1));
    let ctx = Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with("H", n, n)
        .with_props("L", n, n, Props::LOWER_TRIANGULAR)
        .with_props("S", n, n, Props::SYMMETRIC)
        .with("x", n, 1)
        .with("y", n, 1);
    (env, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_backends_agree(seed in any::<u64>(), depth in 1usize..4, data_seed in any::<u64>()) {
        let n = 6;
        let (env, ctx) = workload(n, data_seed);
        let expr = build_expr(seed, depth, n);
        prop_assume!(expr.try_shape(&ctx).is_ok());
        // Values of repeated products can grow; keep comparisons relative.
        let oracle = laab_expr::eval::eval(&expr, &env);
        prop_assume!(oracle.all_finite());

        let eager = eager_eval_expr(&expr, &env);
        prop_assert!(eager.approx_eq(&oracle, 1e-3), "eager differs for `{expr}`");

        let f = Framework::flow().function_from_expr(&expr, &ctx);
        let graph = f.call(&env);
        prop_assert!(graph[0].approx_eq(&oracle, 1e-3), "graph differs for `{expr}`");

        let aware = aware_eval(&expr, &env, &ctx);
        prop_assert!(aware.approx_eq(&oracle, 1e-3), "aware differs for `{expr}`");
    }

    #[test]
    fn rewrite_neighbors_preserve_semantics(
        seed in any::<u64>(),
        depth in 1usize..3,
        data_seed in any::<u64>(),
    ) {
        let n = 5;
        let (env, ctx) = workload(n, data_seed);
        let expr = build_expr(seed, depth, n);
        prop_assume!(expr.try_shape(&ctx).is_ok());
        let oracle = laab_expr::eval::eval(&expr, &env);
        prop_assume!(oracle.all_finite());

        let engine = RewriteEngine::new();
        for neighbor in engine.neighbors(&expr, &ctx).into_iter().take(24) {
            prop_assert_eq!(
                neighbor.try_shape(&ctx).ok(),
                expr.try_shape(&ctx).ok(),
                "rewrite changed the shape: `{}` -> `{}`", expr, neighbor
            );
            let v = laab_expr::eval::eval(&neighbor, &env);
            prop_assert!(
                v.approx_eq(&oracle, 1e-3),
                "rewrite changed the value: `{}` -> `{}` (dist {})",
                expr, neighbor, v.rel_dist(&oracle)
            );
        }
    }

    #[test]
    fn optimizer_never_increases_cost(
        seed in any::<u64>(),
        depth in 1usize..3,
    ) {
        let n = 16;
        let (_, ctx) = workload(n, 0);
        let expr = build_expr(seed, depth, n);
        prop_assume!(expr.try_shape(&ctx).is_ok());
        let r = optimize_expr(&expr, &ctx, CostKind::NaiveShared);
        prop_assert!(r.best_cost <= r.original_cost);
        // And the reported best is really priced at best_cost.
        prop_assert_eq!(
            laab_expr::cost::shared_cost(&r.best, &ctx, false),
            r.best_cost
        );
    }
}
