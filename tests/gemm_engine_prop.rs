//! Property tests for the overhauled GEMM engine: the packed 2-D-tiled
//! kernel matches the naive oracle on arbitrary shapes, transpose flags
//! and scalars — including the degenerate shapes — and the parallel tile
//! scheduler preserves the serial reduction order bit-for-bit.

use laab::prelude::*;
use laab_kernels::reference;
use laab_kernels::{gemm, matmul, set_num_threads};
use proptest::prelude::*;

fn trans(b: bool) -> Trans {
    if b {
        Trans::Yes
    } else {
        Trans::No
    }
}

/// Stored shape of an operand whose `op(·)` shape is `r×c`.
fn stored(t: Trans, r: usize, c: usize) -> (usize, usize) {
    match t {
        Trans::No => (r, c),
        Trans::Yes => (c, r),
    }
}

/// The α/β grid the paper's kernels must be exact on: the BLAS fast paths
/// (0, ±1) plus a generic scalar.
const EDGE_SCALARS: [f64; 4] = [0.0, 1.0, -1.0, 2.5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_reference_all_trans_combos(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        for ta in [Trans::No, Trans::Yes] {
            for tb in [Trans::No, Trans::Yes] {
                let mut g = OperandGen::new(seed);
                let (ar, ac) = stored(ta, m, k);
                let (br, bc) = stored(tb, k, n);
                let a = g.matrix::<f64>(ar, ac);
                let b = g.matrix::<f64>(br, bc);
                let c0 = g.matrix::<f64>(m, n);
                let mut c = c0.clone();
                gemm(alpha, &a, ta, &b, tb, beta, &mut c);
                let want = reference::gemm_naive(alpha, &a, ta, &b, tb, beta, &c0);
                prop_assert!(
                    c.approx_eq(&want, 1e-11),
                    "ta={ta:?} tb={tb:?} dist={}",
                    c.rel_dist(&want)
                );
            }
        }
    }

    #[test]
    fn gemm_alpha_beta_edge_values(
        m in 1usize..32,
        n in 1usize..32,
        k in 1usize..32,
        ai in 0usize..4,
        bi in 0usize..4,
        ta in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (alpha, beta) = (EDGE_SCALARS[ai], EDGE_SCALARS[bi]);
        let ta = trans(ta);
        let mut g = OperandGen::new(seed);
        let (ar, ac) = stored(ta, m, k);
        let a = g.matrix::<f64>(ar, ac);
        let b = g.matrix::<f64>(k, n);
        let c0 = g.matrix::<f64>(m, n);
        let mut c = c0.clone();
        gemm(alpha, &a, ta, &b, Trans::No, beta, &mut c);
        let want = reference::gemm_naive(alpha, &a, ta, &b, Trans::No, beta, &c0);
        prop_assert!(c.approx_eq(&want, 1e-11), "alpha={alpha} beta={beta}");
        // beta == 0 must fully overwrite C, even a poisoned one.
        if beta == 0.0 {
            let mut poisoned = Matrix::<f64>::filled(m, n, f64::NAN);
            gemm(alpha, &a, ta, &b, Trans::No, 0.0, &mut poisoned);
            prop_assert!(poisoned.all_finite(), "beta=0 leaked NaNs from C");
        }
    }

    #[test]
    fn gemm_degenerate_shapes(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        beta in -1.5f64..1.5,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        // k = 0: a pure C-scaling; no packed panel may be touched.
        let a0 = Matrix::<f64>::zeros(m, 0);
        let b0 = Matrix::<f64>::zeros(0, n);
        let c0 = g.matrix::<f64>(m, n);
        let mut c = c0.clone();
        gemm(1.0, &a0, Trans::No, &b0, Trans::No, beta, &mut c);
        let want = reference::gemm_naive(1.0, &a0, Trans::No, &b0, Trans::No, beta, &c0);
        prop_assert!(c.approx_eq(&want, 1e-12), "k=0 is beta-scaling only");

        // 1×n (row output) and n×1 (column output) through the full engine.
        let a = g.matrix::<f64>(1, k);
        let b = g.matrix::<f64>(k, n);
        let mut row = Matrix::<f64>::zeros(1, n);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut row);
        let want =
            reference::gemm_naive(1.0, &a, Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(1, n));
        prop_assert!(row.approx_eq(&want, 1e-11));

        let a = g.matrix::<f64>(m, k);
        let x = g.matrix::<f64>(k, 1);
        let mut col = Matrix::<f64>::zeros(m, 1);
        gemm(1.0, &a, Trans::No, &x, Trans::No, 0.0, &mut col);
        let want =
            reference::gemm_naive(1.0, &a, Trans::No, &x, Trans::No, 0.0, &Matrix::zeros(m, 1));
        prop_assert!(col.approx_eq(&want, 1e-11));
    }

    #[test]
    fn gemm_is_bit_identical_across_thread_counts(
        m in 1usize..160,
        n in 1usize..160,
        k in 1usize..96,
        threads in 2usize..9,
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (ta, tb) = (trans(ta), trans(tb));
        let mut g = OperandGen::new(seed);
        let (ar, ac) = stored(ta, m, k);
        let (br, bc) = stored(tb, k, n);
        let a = g.matrix::<f64>(ar, ac);
        let b = g.matrix::<f64>(br, bc);
        let c0 = g.matrix::<f64>(m, n);

        set_num_threads(1);
        let mut serial = c0.clone();
        gemm(1.5, &a, ta, &b, tb, 0.25, &mut serial);

        set_num_threads(threads);
        let mut parallel = c0.clone();
        gemm(1.5, &a, ta, &b, tb, 0.25, &mut parallel);
        set_num_threads(1);

        // Bitwise, not approximate: the tile scheduler must preserve the
        // serial reduction order exactly (acceptance criterion).
        prop_assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn wide_short_and_gemv_shaped_bit_identical(
        n in 256usize..900,
        m in 1usize..24,
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        // The shapes the old heuristic ran serially: tiny m, large n (and
        // its transpose-analogue, the GEMV-shaped tall product).
        let mut g = OperandGen::new(seed);
        let a = g.matrix::<f64>(m, 64);
        let b = g.matrix::<f64>(64, n);
        set_num_threads(1);
        let wide_serial = matmul(&a, Trans::No, &b, Trans::No);
        set_num_threads(threads);
        let wide_parallel = matmul(&a, Trans::No, &b, Trans::No);
        set_num_threads(1);
        prop_assert_eq!(wide_serial.as_slice(), wide_parallel.as_slice());

        let t = g.matrix::<f64>(n, 64);
        let x = g.matrix::<f64>(64, m);
        set_num_threads(1);
        let tall_serial = matmul(&t, Trans::No, &x, Trans::No);
        set_num_threads(threads);
        let tall_parallel = matmul(&t, Trans::No, &x, Trans::No);
        set_num_threads(1);
        prop_assert_eq!(tall_serial.as_slice(), tall_parallel.as_slice());
    }
}
