//! Property tests for the BLAS substrate: every optimized kernel matches
//! its naive reference on arbitrary shapes, flags and scalars.

use laab::prelude::*;
use laab_kernels::reference;
use laab_kernels::{gemm, matmul_dispatch, syrk, trmm, UpLo};
use proptest::prelude::*;

fn trans(b: bool) -> Trans {
    if b {
        Trans::Yes
    } else {
        Trans::No
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let (ta, tb) = (trans(ta), trans(tb));
        let (ar, ac) = if ta == Trans::Yes { (k, m) } else { (m, k) };
        let (br, bc) = if tb == Trans::Yes { (n, k) } else { (k, n) };
        let a = g.matrix::<f64>(ar, ac);
        let b = g.matrix::<f64>(br, bc);
        let c0 = g.matrix::<f64>(m, n);
        let mut c = c0.clone();
        gemm(alpha, &a, ta, &b, tb, beta, &mut c);
        let want = reference::gemm_naive(alpha, &a, ta, &b, tb, beta, &c0);
        prop_assert!(c.approx_eq(&want, 1e-11), "dist {}", c.rel_dist(&want));
    }

    #[test]
    fn matmul_dispatch_matches_reference_on_vector_shapes(
        k in 1usize..60,
        m_is_vec in any::<bool>(),
        n_is_vec in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let m = if m_is_vec { 1 } else { 13 };
        let n = if n_is_vec { 1 } else { 9 };
        let a = g.matrix::<f64>(m, k);
        let b = g.matrix::<f64>(k, n);
        let got = matmul_dispatch(1.0, &a, Trans::No, &b, Trans::No);
        let want = reference::gemm_naive(
            1.0, &a, Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(m, n),
        );
        prop_assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn trmm_matches_masked_gemm(
        n in 1usize..50,
        m in 1usize..30,
        upper in any::<bool>(),
        alpha in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let t = if upper { g.upper_triangular::<f64>(n) } else { g.lower_triangular::<f64>(n) };
        let b = g.matrix::<f64>(n, m);
        let uplo = if upper { UpLo::Upper } else { UpLo::Lower };
        let got = trmm(alpha, &t, uplo, &b);
        let want = reference::gemm_naive(
            alpha, &t, Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(n, m),
        );
        prop_assert!(got.approx_eq(&want, 1e-11), "dist {}", got.rel_dist(&want));
    }

    #[test]
    fn syrk_matches_reference_and_is_symmetric(
        n in 1usize..40,
        k in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let a = g.matrix::<f64>(n, k);
        let got = syrk(1.0, &a);
        prop_assert!(got.approx_eq(&reference::syrk_naive(&a), 1e-11));
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(got[(i, j)], got[(j, i)]);
            }
        }
    }

    #[test]
    fn structured_kernels_match_dense(
        n in 1usize..40,
        m in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let t = g.tridiagonal::<f64>(n);
        let d = g.diagonal::<f64>(n);
        let b = g.matrix::<f64>(n, m);
        let via_dense_t = reference::gemm_naive(
            1.0, &t.to_dense(), Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(n, m),
        );
        prop_assert!(laab_kernels::tridiag_matmul(&t, &b).approx_eq(&via_dense_t, 1e-12));
        let via_dense_d = reference::gemm_naive(
            1.0, &d.to_dense(), Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(n, m),
        );
        prop_assert!(laab_kernels::diag_matmul(&d, &b).approx_eq(&via_dense_d, 1e-12));
    }

    #[test]
    fn level1_identities(len in 0usize..200, alpha in -3.0f64..3.0, seed in any::<u64>()) {
        let mut g = OperandGen::new(seed);
        let x = g.matrix::<f64>(len.max(1), 1);
        let y = g.matrix::<f64>(len.max(1), 1);
        let (xs, ys) = (x.as_slice(), y.as_slice());
        // dot symmetry
        prop_assert!((laab_kernels::dot(xs, ys) - laab_kernels::dot(ys, xs)).abs() < 1e-12);
        // axpy via dot: dot(x, alpha*y + x) == alpha*dot(x,y) + dot(x,x)
        let mut z = y.as_slice().to_vec();
        for v in z.iter_mut() { *v *= alpha; }
        let mut w = z.clone();
        laab_kernels::axpy(1.0, xs, &mut w);
        let lhs = laab_kernels::dot(xs, &w);
        let rhs = alpha * laab_kernels::dot(xs, ys) + laab_kernels::dot(xs, xs);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
        // nrm2² == dot(x, x)
        let nrm = laab_kernels::nrm2(xs);
        prop_assert!((nrm * nrm - laab_kernels::dot(xs, xs)).abs() < 1e-9);
    }

    #[test]
    fn gemm_parallel_equals_serial(
        m in 16usize..80,
        n in 1usize..40,
        k in 1usize..40,
        threads in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let a = g.matrix::<f64>(m, k);
        let b = g.matrix::<f64>(k, n);
        let serial = laab_kernels::matmul(&a, Trans::No, &b, Trans::No);
        laab_kernels::set_num_threads(threads);
        let parallel = laab_kernels::matmul(&a, Trans::No, &b, Trans::No);
        laab_kernels::set_num_threads(1);
        prop_assert!(parallel.approx_eq(&serial, 1e-13));
    }
}
