//! End-to-end checks of the paper's *deterministic* claims — the kernel
//! counts and graph shapes behind every table, independent of wall-clock.

use laab::prelude::*;
use laab_framework::lower::eager_eval_expr;
use laab_kernels::counters::{self, Kernel};

fn env_square(n: usize) -> (Env<f32>, Context) {
    let mut g = OperandGen::new(1);
    let env = Env::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("H", g.matrix(n, n))
        .with("x", g.matrix(n, 1))
        .with("y", g.matrix(n, 1));
    let ctx = Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with("H", n, n)
        .with("x", n, 1)
        .with("y", n, 1);
    (env, ctx)
}

/// Table I row 1: `AᵀB` is exactly one GEMM in both modes — the transpose
/// is a kernel flag, never a data movement.
#[test]
fn table1_atb_is_one_gemm_everywhere() {
    let n = 24;
    let (env, ctx) = env_square(n);
    let s = var("A").t() * var("B");
    let (_, eager) = counters::measure(|| eager_eval_expr(&s, &env));
    assert_eq!(eager.calls(Kernel::Gemm), 1);
    assert_eq!(eager.calls(Kernel::Transpose), 0);

    let f = Framework::flow().function_from_expr(&s, &ctx);
    let (_, graph) = counters::measure(|| f.call(&env));
    assert_eq!(graph.calls(Kernel::Gemm), 1);
    assert_eq!(graph.calls(Kernel::Transpose), 0);
}

/// Table II: the four CSE expressions cost 1 / 1 / 2 / 3 GEMMs in graph
/// mode — including the paper's central finding that the flat chain `E3`
/// defeats DAG-based CSE.
#[test]
fn table2_gemm_counts_match_paper() {
    let n = 16;
    let (env, ctx) = env_square(n);
    let s = var("A").t() * var("B");
    let cases: Vec<(Expr, u64)> = vec![
        (s.clone(), 1),
        (s.clone() + s.clone(), 1),
        (s.t() * s.clone(), 2),
        (s.t() * var("A").t() * var("B"), 3),
    ];
    let flow = Framework::flow();
    for (expr, want) in cases {
        let f = flow.function_from_expr(&expr, &ctx);
        let (_, c) = counters::measure(|| f.call(&env));
        assert_eq!(c.calls(Kernel::Gemm), want, "GEMMs for `{expr}`");
    }
}

/// Table II row 2 also fuses the doubling into the GEMM's alpha: no
/// separate scaling kernel runs.
#[test]
fn table2_e1_has_no_separate_scaling() {
    let n = 16;
    let (env, ctx) = env_square(n);
    let s = var("A").t() * var("B");
    let e1 = s.clone() + s.clone();
    let f = Framework::flow().function_from_expr(&e1, &ctx);
    let (out, c) = counters::measure(|| f.call(&env));
    assert_eq!(c.calls(Kernel::GeAdd), 0, "no eltwise add survives");
    assert_eq!(c.calls(Kernel::Scal), 0, "no scaling kernel");
    // Value is 2·AᵀB.
    let want = laab_expr::eval::eval(&e1, &env);
    assert!(out[0].approx_eq(&want, 1e-4));
}

/// Table III: kernel dispatch per chain and parenthesization.
#[test]
fn table3_kernel_dispatch_matches_paper() {
    let n = 16;
    let (env, ctx) = env_square(n);
    let (h, x, y) = (var("H"), var("x"), var("y"));
    // (expression, GEMMs, GEMVs)
    let cases: Vec<(Expr, u64, u64)> = vec![
        (h.t() * h.clone() * x.clone(), 1, 1),   // O(n³): the GEMM runs
        (h.t() * (h.clone() * x.clone()), 0, 2), // O(n²)
        (y.t() * h.t() * h.clone(), 0, 2),       // default L→R is optimal
        (h.t() * y.clone() * x.t() * h.clone(), 2, 1), // O(n³)
        ((h.t() * y.clone()) * (x.t() * h.clone()), 1, 2), // outer product is a k=1 GEMM
    ];
    let flow = Framework::flow();
    for (expr, gemm, gemv) in cases {
        let f = flow.function_from_expr(&expr, &ctx);
        let (_, c) = counters::measure(|| f.call(&env));
        assert_eq!(
            (c.calls(Kernel::Gemm), c.calls(Kernel::Gemv)),
            (gemm, gemv),
            "dispatch for `{expr}`: {}",
            c.describe()
        );
    }
}

/// Figs. 3 & 4: node counts before and after optimization.
#[test]
fn fig3_fig4_graph_shapes() {
    let n = 8;
    let ctx = Context::new().with("A", n, n).with("B", n, n);
    let flow = Framework::flow();
    let s = var("A").t() * var("B");

    let f2 = flow.function_from_expr(&(s.t() * s.clone()), &ctx);
    assert_eq!(f2.unoptimized_graph().matmul_count(), 3, "initial graph (Fig 3 left)");
    assert_eq!(f2.graph().matmul_count(), 2, "optimized graph (Fig 3 right)");

    let f3 = flow.function_from_expr(&(s.t() * var("A").t() * var("B")), &ctx);
    assert_eq!(f3.graph().matmul_count(), 3, "Fig 4: nothing to deduplicate");
}

/// Table VI: the unrolled naive loop and the hoisted loop optimize to
/// graphs with identical kernel traffic (LICM via CSE), and partial
/// operand access is not rewritten.
#[test]
fn table6_licm_and_partial_access() {
    let n = 16;
    let (mut env, ctx) = env_square(n);
    let mut g = OperandGen::new(9);
    for i in 0..3 {
        env.insert(&format!("v{i}"), g.matrix(n, 1));
    }
    let flow = Framework::flow();

    let naive = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        (0..3)
            .map(|i| {
                let ab = fb.matmul(a, b);
                let v = fb.input(&format!("v{i}"), n, 1);
                let vt = fb.t(v);
                let outer = fb.matmul(v, vt);
                fb.add(ab, outer)
            })
            .collect()
    });
    assert_eq!(naive.unoptimized_graph().matmul_count(), 6);
    assert_eq!(naive.graph().matmul_count(), 4, "A·B hoisted, 3 outer products remain");
    let (_, c) = counters::measure(|| naive.call(&env));
    assert_eq!(c.calls(Kernel::Gemm), 4);

    // Partial access: the naive form really pays the full product.
    let pn = flow.function_from_expr(&laab_expr::elem(var("A") * var("B"), 2, 2), &ctx);
    let (_, cn) = counters::measure(|| pn.call(&env));
    assert_eq!(cn.calls(Kernel::Gemm), 1, "frameworks do NOT push slicing down");
    let pr = flow.function_from_expr(&(var("A").row(2) * var("B").col(2)), &ctx);
    let (_, cr) = counters::measure(|| pr.call(&env));
    assert_eq!(cr.calls(Kernel::Dot), 1);
    assert_eq!(cr.calls(Kernel::Gemm), 0);
}

/// Table V / Eq. 11: the blocked identity holds numerically and the two
/// sides differ by exactly 2× in GEMM FLOPs.
#[test]
fn table5_blocked_identity_and_flops() {
    let n = 16;
    let h = n / 2;
    let mut g = OperandGen::new(4);
    let env = Env::<f32>::new()
        .with("A1", g.matrix(h, h))
        .with("A2", g.matrix(h, h))
        .with("B1", g.matrix(h, n))
        .with("B2", g.matrix(h, n));
    let ctx = Context::new().with("A1", h, h).with("A2", h, h).with("B1", h, n).with("B2", h, n);
    let lhs = laab_expr::block_diag(var("A1"), var("A2")) * laab_expr::vcat(var("B1"), var("B2"));
    let rhs = laab_expr::vcat(var("A1") * var("B1"), var("A2") * var("B2"));
    let flow = Framework::flow();
    let fl = flow.function_from_expr(&lhs, &ctx);
    let fr = flow.function_from_expr(&rhs, &ctx);
    let (vl, cl) = counters::measure(|| fl.call(&env));
    let (vr, cr) = counters::measure(|| fr.call(&env));
    assert!(vl[0].approx_eq(&vr[0], 1e-4));
    assert_eq!(cl.flops(Kernel::Gemm), 2 * cr.flops(Kernel::Gemm), "LHS does 2x the FLOPs");
}

/// The full experiment suite runs end-to-end at a small size and every
/// paper finding reproduces.
#[test]
fn full_suite_reproduces_all_findings() {
    let cfg = ExperimentConfig::quick(160);
    let results = run_all(&cfg);
    assert_eq!(results.len(), 10, "nine paper artifacts + the solver extension");
    for r in &results {
        for c in r.asserted_checks() {
            assert!(c.passed, "[{}] failed: {} — {}", r.id, c.name, c.detail);
        }
        assert!(!r.to_markdown().is_empty());
    }
}
