//! Integration tests for the `laab` runner: the JSON report round-trips
//! through serde byte-for-byte, and experiment-name parsing rejects
//! unknown names with an actionable error.

use laab::suite::runner::{self, Experiment, RunReport, REPORT_SCHEMA};
use laab::suite::ExperimentConfig;

fn tiny_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(24);
    // One rep is enough: these tests exercise the report plumbing, not the
    // timing statistics. The seed sits above 2^53 to pin exact (non-f64)
    // integer round-tripping.
    cfg.timing.reps = 1;
    cfg.timing.warmup = 0;
    cfg.seed = (1 << 53) + 1;
    cfg
}

#[test]
fn report_round_trips_via_serde() {
    let cfg = tiny_cfg();
    let plan = runner::parse_experiments(&["table2".into(), "fig7".into()]).unwrap();
    let report = runner::run(&cfg, &plan);

    assert_eq!(report.schema, REPORT_SCHEMA);
    assert_eq!(report.n, 24);
    assert_eq!(report.seed, (1 << 53) + 1);
    let ids: Vec<&str> = report.experiments.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(ids, ["table2", "fig7"]);

    let json = report.to_json();
    let back = RunReport::from_json(&json).unwrap();
    assert_eq!(back, report, "decode(encode(report)) != report");

    // Encoding the decoded report reproduces the exact bytes: field order
    // is stable, so BENCH_*.json diffs are meaningful across runs.
    assert_eq!(back.to_json(), json);
}

#[test]
fn report_preserves_tables_and_checks() {
    let cfg = tiny_cfg();
    let report = runner::run(&cfg, &[Experiment::Table3]);
    let back = RunReport::from_json(&report.to_json()).unwrap();

    let (orig, parsed) = (&report.experiments[0], &back.experiments[0]);
    assert_eq!(parsed.result.table.headers, orig.result.table.headers);
    assert_eq!(parsed.result.table.rows, orig.result.table.rows);
    assert_eq!(parsed.result.analysis, orig.result.analysis);
    assert_eq!(parsed.checks_total, orig.result.checks.len());
    assert_eq!(parsed.checks_passed, orig.result.checks.iter().filter(|c| c.passed).count());
    // Unicode expression labels (ᵀ, ≈) survive the JSON escaping.
    assert!(parsed.result.table.rows.iter().flatten().any(|c| c.contains('ᵀ')));
}

#[test]
fn from_json_rejects_garbage_and_wrong_schema() {
    assert!(RunReport::from_json("not json at all").is_err());
    assert!(RunReport::from_json("{\"schema\": \"laab-bench-v1\"}").is_err(), "missing fields");

    let cfg = tiny_cfg();
    let report = runner::run(&cfg, &[Experiment::Table2]);
    let wrong_schema = report.to_json().replace(REPORT_SCHEMA, "laab-bench-v999");
    let err = RunReport::from_json(&wrong_schema).unwrap_err();
    assert!(err.to_string().contains("laab-bench-v999"), "got: {err}");
}

#[test]
fn parse_experiments_rejects_unknown_names() {
    for bogus in ["table9", "fig2", "", "tableone", "ext-solve"] {
        let err = runner::parse_experiments(&[bogus.to_string()])
            .expect_err(&format!("`{bogus}` must be rejected"));
        assert_eq!(err.name, bogus);
        assert!(err.to_string().contains("valid:"), "error lists the menu");
    }
    // A good name mixed with a bad one still fails (no partial plans).
    assert!(runner::parse_experiments(&["table1".into(), "table9".into()]).is_err());
}

#[test]
fn parse_experiments_accepts_all_ids_case_insensitively() {
    for e in Experiment::ALL {
        let plan = runner::parse_experiments(&[e.id().to_uppercase()]).unwrap();
        assert_eq!(plan, vec![e]);
    }
    assert_eq!(runner::parse_experiments(&[]).unwrap().len(), Experiment::ALL.len());
}
